package trace

import (
	"sync"
	"sync/atomic"

	"repro/internal/isa"
)

// Forkable is a stream whose position can be duplicated: Fork returns an
// independent stream that continues from the same point. Machine
// checkpoints require their streams to be forkable so that every run
// forked from the checkpoint replays the same instruction suffix.
type Forkable interface {
	Stream
	Fork() Stream
}

// forkChunk is the number of instructions memoised per chunk. Chunks are
// allocated lazily as the leading cursor advances.
const forkChunk = 1 << 12

// ForkSource memoises an underlying stream so that any number of cursors
// can replay it, each at its own position, from concurrent goroutines.
// The underlying stream is only ever pulled by the leading cursor, under
// a mutex; trailing cursors read the memo lock-free. Publication is via
// an atomic instruction count: a cursor may read memo slot i only after
// observing count > i, which orders the read after the slot's write.
type ForkSource struct {
	name string

	mu   sync.Mutex // guards base and memo extension
	base Stream

	chunks atomic.Pointer[[]*[forkChunk]isa.Inst]
	count  atomic.Int64 // instructions memoised and published
	end    atomic.Int64 // position where base exhausted, or -1
}

// NewForkSource wraps base, whose position becomes the source's origin.
// base must not be used directly afterwards.
func NewForkSource(base Stream) *ForkSource {
	s := &ForkSource{name: base.Name(), base: base}
	s.end.Store(-1)
	empty := make([]*[forkChunk]isa.Inst, 0)
	s.chunks.Store(&empty)
	return s
}

// Fork returns a new cursor positioned at the source's origin.
func (s *ForkSource) Fork() *ForkCursor { return &ForkCursor{src: s} }

// extend memoises instructions from base until target is covered (or the
// base is exhausted).
func (s *ForkSource) extend(target int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.count.Load() <= target && s.end.Load() < 0 {
		n := s.count.Load()
		in, ok := s.base.Next()
		if !ok {
			s.end.Store(n)
			return
		}
		chunks := *s.chunks.Load()
		if int(n/forkChunk) == len(chunks) {
			nc := make([]*[forkChunk]isa.Inst, len(chunks)+1)
			copy(nc, chunks)
			nc[len(chunks)] = new([forkChunk]isa.Inst)
			s.chunks.Store(&nc)
			chunks = nc
		}
		chunks[n/forkChunk][n%forkChunk] = in
		s.count.Add(1)
	}
}

// TrimBefore releases the memo chunks wholly below pos, freeing the
// warmup prefix once every future cursor is known to start at or after
// pos. It must not be called concurrently with cursor reads; callers
// trim once, between warming and forking.
func (s *ForkSource) TrimBefore(pos int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks := *s.chunks.Load()
	nc := make([]*[forkChunk]isa.Inst, len(chunks))
	copy(nc, chunks)
	for i := 0; i < int(pos/forkChunk) && i < len(nc); i++ {
		nc[i] = nil
	}
	s.chunks.Store(&nc)
}

// ForkCursor is one replay position over a ForkSource. It implements
// Forkable; cursors on the same source may advance concurrently.
type ForkCursor struct {
	src *ForkSource
	pos int64
}

// Name implements Stream.
func (c *ForkCursor) Name() string { return c.src.name }

// Pos returns the cursor's position relative to the source's origin.
func (c *ForkCursor) Pos() int64 { return c.pos }

// Fork implements Forkable: the new cursor continues from c's position.
func (c *ForkCursor) Fork() Stream { return &ForkCursor{src: c.src, pos: c.pos} }

// Next implements Stream.
func (c *ForkCursor) Next() (isa.Inst, bool) {
	for {
		if n := c.src.count.Load(); c.pos < n {
			chunks := *c.src.chunks.Load()
			in := chunks[c.pos/forkChunk][c.pos%forkChunk]
			c.pos++
			return in, true
		}
		if end := c.src.end.Load(); end >= 0 && c.pos >= end {
			return isa.Inst{}, false
		}
		c.src.extend(c.pos)
	}
}
