package trace

import (
	"sync"
	"sync/atomic"

	"repro/internal/isa"
)

// Forkable is a stream whose position can be duplicated: Fork returns an
// independent stream that continues from the same point. Machine
// checkpoints require their streams to be forkable so that every run
// forked from the checkpoint replays the same instruction suffix.
type Forkable interface {
	Stream
	Fork() Stream
}

// forkChunk is the number of instructions memoised per chunk. Chunks are
// allocated lazily as the leading cursor advances.
const forkChunk = 1 << 12

// chunkPool recycles memo chunks across trims and sources: a long warmup
// allocates and releases the chunks of its whole prefix one by one, and a
// sweep repeats that per checkpoint, so without reuse the chunk churn
// dominates a forked sweep's allocation profile. Reusing a trimmed chunk
// is safe by the same argument that lets trimming free it: only chunks
// wholly below every live cursor's published position are trimmed, a
// cursor never reads below its own position, and origin forks are
// prohibited once trimming is armed — so no reader can still be looking
// at a pooled chunk when it is overwritten. Stale instructions in a
// reused chunk are unobservable: slot i is readable only after the
// source publishes count > i, which happens after the slot is written.
var chunkPool sync.Pool

func newChunk() *[forkChunk]isa.Inst {
	if v := chunkPool.Get(); v != nil {
		return v.(*[forkChunk]isa.Inst)
	}
	return new([forkChunk]isa.Inst)
}

// ForkSource memoises an underlying stream so that any number of cursors
// can replay it, each at its own position, from concurrent goroutines.
// The underlying stream is only ever pulled by the leading cursor, under
// a mutex; trailing cursors read the memo lock-free. Publication is via
// an atomic instruction count: a cursor may read memo slot i only after
// observing count > i, which orders the read after the slot's write.
//
// The source keeps a registry of its live cursors. Once TrimBefore has
// been called (declaring that no cursor will ever start below the trim
// point again — origin forks are dead from then on), the source trims
// itself as the memo grows: whenever the leading cursor allocates a new
// chunk, every chunk below the minimum live cursor position is released.
// A long measured run's footprint is then bounded by the spread between
// the fastest and slowest cursor rather than the whole measured suffix.
type ForkSource struct {
	name string

	mu   sync.Mutex // guards base, memo extension, the registry, and trimming
	base Stream

	// curs are the live cursors; their minimum position bounds automatic
	// trimming. Cursors register at Fork and leave at Release.
	curs []*ForkCursor
	// liveTrim arms automatic trimming; set by the first TrimBefore.
	liveTrim bool
	// lowChunk is the first chunk index still memoised (all below are nil).
	lowChunk int

	chunks atomic.Pointer[[]*[forkChunk]isa.Inst]
	count  atomic.Int64 // instructions memoised and published
	end    atomic.Int64 // position where base exhausted, or -1
}

// NewForkSource wraps base, whose position becomes the source's origin.
// base must not be used directly afterwards.
func NewForkSource(base Stream) *ForkSource {
	s := &ForkSource{name: base.Name(), base: base}
	s.end.Store(-1)
	empty := make([]*[forkChunk]isa.Inst, 0)
	s.chunks.Store(&empty)
	return s
}

// Fork returns a new cursor positioned at the source's origin.
func (s *ForkSource) Fork() *ForkCursor {
	c := &ForkCursor{src: s}
	s.mu.Lock()
	s.curs = append(s.curs, c)
	s.mu.Unlock()
	return c
}

// extend memoises instructions from base until target is covered (or the
// base is exhausted).
func (s *ForkSource) extend(target int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.count.Load() <= target && s.end.Load() < 0 {
		n := s.count.Load()
		in, ok := s.base.Next()
		if !ok {
			s.end.Store(n)
			return
		}
		chunks := *s.chunks.Load()
		if int(n/forkChunk) == len(chunks) {
			// A new chunk is about to be pinned: drop the ones every live
			// cursor has already replayed, so the resident window slides
			// with the cursors instead of accumulating.
			s.autoTrimLocked()
			chunks = *s.chunks.Load()
			nc := make([]*[forkChunk]isa.Inst, len(chunks)+1)
			copy(nc, chunks)
			nc[len(chunks)] = newChunk()
			s.chunks.Store(&nc)
			chunks = nc
		}
		chunks[n/forkChunk][n%forkChunk] = in
		s.count.Add(1)
	}
}

// autoTrimLocked trims behind the minimum live cursor. Callers hold s.mu.
func (s *ForkSource) autoTrimLocked() {
	if !s.liveTrim || len(s.curs) == 0 {
		return
	}
	min := s.curs[0].pos.Load()
	for _, c := range s.curs[1:] {
		if p := c.pos.Load(); p < min {
			min = p
		}
	}
	s.trimBeforeLocked(min)
}

// TrimBefore releases the memo chunks wholly below pos. Calling it is the
// caller's declaration that no cursor will ever read below pos again —
// from then on new cursors must come from forking live cursors (an origin
// cursor from Fork would read the freed prefix) — and it arms live
// trimming: as the memo grows, the source keeps releasing chunks behind
// the minimum live cursor on its own.
//
// Trimming is safe concurrently with cursor reads: the chunk slice is
// replaced copy-on-write, a cursor publishes its position before reading
// the slot it points at, and only chunks strictly below the minimum
// published position are freed.
func (s *ForkSource) TrimBefore(pos int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.liveTrim = true
	s.trimBeforeLocked(pos)
}

// trimBeforeLocked nils the chunks wholly below pos. Callers hold s.mu.
func (s *ForkSource) trimBeforeLocked(pos int64) {
	chunks := *s.chunks.Load()
	lo := int(pos / forkChunk)
	if lo > len(chunks) {
		lo = len(chunks)
	}
	if lo <= s.lowChunk {
		return
	}
	nc := make([]*[forkChunk]isa.Inst, len(chunks))
	copy(nc, chunks)
	for i := s.lowChunk; i < lo; i++ {
		if nc[i] != nil {
			chunkPool.Put(nc[i])
			nc[i] = nil
		}
	}
	s.lowChunk = lo
	s.chunks.Store(&nc)
}

// ForkCursor is one replay position over a ForkSource. It implements
// Forkable; cursors on the same source may advance concurrently.
type ForkCursor struct {
	src *ForkSource
	pos atomic.Int64
}

// Name implements Stream.
func (c *ForkCursor) Name() string { return c.src.name }

// Pos returns the cursor's position relative to the source's origin.
func (c *ForkCursor) Pos() int64 { return c.pos.Load() }

// Fork implements Forkable: the new cursor continues from c's position.
func (c *ForkCursor) Fork() Stream {
	n := &ForkCursor{src: c.src}
	n.pos.Store(c.pos.Load())
	c.src.mu.Lock()
	c.src.curs = append(c.src.curs, n)
	c.src.mu.Unlock()
	return n
}

// Release unregisters the cursor from its source, so live trimming no
// longer waits for it. A checkpoint template releases its cursor when the
// last grid point has forked; without that, the cursor pinned at the warm
// frontier would hold the whole measured suffix in memory. The cursor
// must not be read or forked after Release.
func (c *ForkCursor) Release() {
	s := c.src
	s.mu.Lock()
	for i, cc := range s.curs {
		if cc == c {
			s.curs[i] = s.curs[len(s.curs)-1]
			s.curs[len(s.curs)-1] = nil
			s.curs = s.curs[:len(s.curs)-1]
			break
		}
	}
	s.mu.Unlock()
}

// Next implements Stream.
func (c *ForkCursor) Next() (isa.Inst, bool) {
	for {
		p := c.pos.Load()
		if n := c.src.count.Load(); p < n {
			chunks := *c.src.chunks.Load()
			in := chunks[p/forkChunk][p%forkChunk]
			c.pos.Store(p + 1)
			return in, true
		}
		if end := c.src.end.Load(); end >= 0 && p >= end {
			return isa.Inst{}, false
		}
		c.src.extend(p)
	}
}
