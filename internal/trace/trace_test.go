package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestNamesAndNew(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("want 8 benchmarks, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, n := range names {
		s, err := New(n, 1)
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if s.Name() != n {
			t.Errorf("stream name %q != %q", s.Name(), n)
		}
	}
	if _, err := New("bogus", 1); err == nil {
		t.Error("New of unknown benchmark should fail")
	}
}

func TestAllBenchmarksWellFormed(t *testing.T) {
	for _, name := range Names() {
		s, _ := New(name, 42)
		for i := 0; i < 20000; i++ {
			in, ok := s.Next()
			if !ok {
				t.Fatalf("%s: stream exhausted at %d", name, i)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("%s inst %d: %v (%s)", name, i, err, in.String())
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, _ := New(name, 7)
		b, _ := New(name, 7)
		for i := 0; i < 5000; i++ {
			x, _ := a.Next()
			y, _ := b.Next()
			if x != y {
				t.Fatalf("%s: divergence at %d: %v vs %v", name, i, x, y)
			}
		}
	}
}

func TestSeedChangesDataDependentBehaviour(t *testing.T) {
	// gcc's branches are data dependent, so different seeds must give
	// different outcome sequences.
	a, _ := New("gcc", 1)
	b, _ := New("gcc", 2)
	diff := false
	for i := 0; i < 5000 && !diff; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x.Class == isa.Branch && x.Taken != y.Taken {
			diff = true
		}
		if x.PC != y.PC {
			// Control flow diverged entirely, which also counts.
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 1 and 2 produced identical gcc branch behaviour")
	}
}

func TestStablePCs(t *testing.T) {
	// Each workload must present a bounded static footprint so PC-indexed
	// predictors see repeated instances of the same instructions.
	for _, name := range Names() {
		p := Characterize(mustNew(t, name), 30000)
		if p.UniquePCs > 64 {
			t.Errorf("%s: %d static PCs, want a compact loop kernel", name, p.UniquePCs)
		}
		if p.UniquePCs < 5 {
			t.Errorf("%s: implausibly few static PCs (%d)", name, p.UniquePCs)
		}
	}
}

func mustNew(t *testing.T, name string) Stream {
	t.Helper()
	s, err := New(name, 99)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWorkloadShapes(t *testing.T) {
	// The substitution contract from DESIGN.md §2: each workload carries
	// the characteristics the paper's analysis relies on.
	prof := make(map[string]Profile)
	for _, name := range Names() {
		prof[name] = Characterize(mustNew(t, name), 50000)
	}

	// FP benchmarks are FP-heavy; integer benchmarks have no FP at all.
	for _, fpb := range []string{"swim", "mgrid", "applu", "equake", "ammp"} {
		if got := prof[fpb].FpFraction(); got < 0.25 {
			t.Errorf("%s: fp fraction %.2f too low", fpb, got)
		}
	}
	for _, ib := range []string{"gcc", "twolf", "vortex"} {
		if got := prof[ib].FpFraction(); got != 0 {
			t.Errorf("%s: fp fraction %.2f, want 0", ib, got)
		}
	}

	// Working sets: gcc tiny (L1-resident), swim enormous (streams 16 MB).
	if kb := prof["gcc"].UniqueLines * 64 / 1024; kb > 80 {
		t.Errorf("gcc working set %d KB, want L1-resident", kb)
	}
	// swim streams with no reuse: footprint grows linearly with the
	// profiled window (5 cursors x 16 B per 13-instruction iteration
	// over 50 k instructions ~= 240 KB, far beyond the L1).
	if kb := prof["swim"].UniqueLines * 64 / 1024; kb < 150 {
		t.Errorf("swim touched only %d KB, want streaming footprint", kb)
	}

	// Branchiness: gcc branchier than swim by a wide margin.
	if prof["gcc"].BranchFraction() < 2*prof["swim"].BranchFraction() {
		t.Errorf("gcc branch fraction %.3f should far exceed swim %.3f",
			prof["gcc"].BranchFraction(), prof["swim"].BranchFraction())
	}

	// Memory intensity: every workload performs loads and stores.
	for name, p := range prof {
		if p.Loads == 0 || p.Stores == 0 {
			t.Errorf("%s: loads=%d stores=%d", name, p.Loads, p.Stores)
		}
		if p.MemFraction() < 0.05 || p.MemFraction() > 0.7 {
			t.Errorf("%s: memory fraction %.2f out of plausible range", name, p.MemFraction())
		}
	}

	// Serialization: twolf's pointer chase has short dep distances
	// relative to mgrid's wide stencil.
	if prof["twolf"].AvgDepDist > prof["mgrid"].AvgDepDist {
		t.Errorf("twolf dep distance %.1f should be below mgrid %.1f",
			prof["twolf"].AvgDepDist, prof["mgrid"].AvgDepDist)
	}
}

func TestLimit(t *testing.T) {
	s, _ := New("swim", 1)
	l := Limit(s, 10)
	if l.Name() != "swim" {
		t.Error("Limited should forward Name")
	}
	n := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		n++
		if n > 10 {
			t.Fatal("limit not enforced")
		}
	}
	if n != 10 {
		t.Errorf("got %d instructions, want 10", n)
	}
}

func TestFromSliceAndTake(t *testing.T) {
	ins := []isa.Inst{
		{PC: 4, Class: isa.IntAlu, Src1: 1, Src2: 2, Dest: 3},
		{PC: 8, Class: isa.IntAlu, Src1: 3, Src2: 2, Dest: 4},
	}
	s := FromSlice("demo", ins)
	if s.Name() != "demo" {
		t.Error("name")
	}
	got := Take(s, 5)
	if len(got) != 2 || got[0].PC != 4 || got[1].PC != 8 {
		t.Errorf("Take = %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted slice stream should report !ok")
	}
}

func TestKernelBuilderErrors(t *testing.T) {
	// Instruction before any block.
	b := newKernel("bad", 0)
	b.op(isa.IntAlu, 1, 2, 3)
	if _, err := b.build(); err == nil {
		t.Error("op before block should fail")
	}
	// Duplicate label.
	b = newKernel("bad", 0)
	b.block("x")
	b.op(isa.IntAlu, 1, 2, 3)
	b.block("x")
	if _, err := b.build(); err == nil {
		t.Error("duplicate label should fail")
	}
	// No blocks.
	if _, err := newKernel("bad", 0).build(); err == nil {
		t.Error("empty kernel should fail")
	}
	// Empty block.
	b = newKernel("bad", 0)
	b.block("x")
	if _, err := b.build(); err == nil {
		t.Error("empty block should fail")
	}
	// Unknown branch target.
	b = newKernel("bad", 0)
	b.block("x")
	b.branch(1, "nowhere", func() bool { return true })
	if _, err := b.build(); err == nil {
		t.Error("unknown target should fail")
	}
	// Memory op without address callback.
	b = newKernel("bad", 0)
	b.block("x")
	b.add(staticOp{class: isa.Load, dest: 1, src1: 2, src2: isa.RegNone, size: 8})
	if _, err := b.build(); err == nil {
		t.Error("load without addr should fail")
	}
}

func TestKernelControlFlow(t *testing.T) {
	// A two-block loop: "top" falls through to "body" whose back-branch is
	// taken twice then not taken. Check block sequencing and PCs.
	b := newKernel("cf", 0x100)
	b.block("top")
	b.op(isa.IntAlu, 1, 1, 2)
	b.block("body")
	b.op(isa.IntAlu, 3, 1, 1)
	b.branch(3, "body", loopTaken(3))
	g := b.mustBuild()

	var pcs []uint64
	var takens []bool
	for i := 0; i < 8; i++ {
		in, _ := g.Next()
		pcs = append(pcs, in.PC)
		if in.Class == isa.Branch {
			takens = append(takens, in.Taken)
		}
	}
	// Expected: top(0x100) body(0x104,0x108 T) body(0x104,0x108 T)
	// body(0x104,0x108 NT) then wrap: top(0x100)...
	want := []uint64{0x100, 0x104, 0x108, 0x104, 0x108, 0x104, 0x108, 0x100}
	for i, pc := range want {
		if pcs[i] != pc {
			t.Fatalf("pc[%d] = %#x, want %#x (full %v)", i, pcs[i], pc, pcs)
		}
	}
	if len(takens) != 3 || !takens[0] || !takens[1] || takens[2] {
		t.Errorf("branch outcomes = %v, want [true true false]", takens)
	}
}

func TestJumpHelper(t *testing.T) {
	b := newKernel("j", 0)
	b.block("top")
	b.op(isa.IntAlu, 1, 1, 2)
	b.jump("top")
	g := b.mustBuild()
	for i := 0; i < 6; i++ {
		in, _ := g.Next()
		if in.Class == isa.Branch && !in.Taken {
			t.Fatal("jump must always be taken")
		}
	}
}

func TestRNG(t *testing.T) {
	r := newRNG(1)
	a := r.next()
	b := r.next()
	if a == b {
		t.Error("successive values should differ")
	}
	r2 := newRNG(1)
	if r2.next() != a {
		t.Error("rng not deterministic")
	}
	if !newRNG(3).prob(1.0) {
		t.Error("prob(1) must be true")
	}
	if newRNG(3).prob(0.0) {
		t.Error("prob(0) must be false")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("intn(0) should panic")
			}
		}()
		r.intn(0)
	}()
}

// Property: rng.intn is always within bounds, and prob estimates converge.
func TestRNGProperties(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound%1000) + 1
		r := newRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}

	r := newRNG(123)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.prob(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.27 || got > 0.33 {
		t.Errorf("prob(0.3) frequency = %.3f", got)
	}
}

// Property: streamCursor stays within its region and wraps.
func TestStreamCursorProperty(t *testing.T) {
	f := func(strideRaw uint8, steps uint16) bool {
		stride := uint64(strideRaw%64) + 1
		c := &streamCursor{base: 0x1000, size: 4096, stride: stride}
		for i := 0; i < int(steps%2000); i++ {
			a := c.next()
			if a < 0x1000 || a >= 0x1000+4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: randCursor addresses are aligned slots within the region.
func TestRandCursorProperty(t *testing.T) {
	r := newRNG(5)
	c := newRandCursor(r, 0x8000, 1<<16, 64)
	for i := 0; i < 1000; i++ {
		a := c.next()
		if a < 0x8000 || a >= 0x8000+1<<16 {
			t.Fatalf("address %#x out of region", a)
		}
		if (a-0x8000)%64 != 0 {
			t.Fatalf("address %#x misaligned", a)
		}
		if c.rel(8) != a+8 {
			t.Fatal("rel broken")
		}
	}
}

func TestTakenCallbacks(t *testing.T) {
	lt := loopTaken(3)
	want := []bool{true, true, false, true, true, false}
	for i, w := range want {
		if got := lt(); got != w {
			t.Fatalf("loopTaken step %d = %v, want %v", i, got, w)
		}
	}
}

func TestCharacterizeStops(t *testing.T) {
	s := FromSlice("tiny", []isa.Inst{{PC: 4, Class: isa.IntAlu, Src1: 1, Src2: 2, Dest: 3}})
	p := Characterize(s, 100)
	if p.Instructions != 1 {
		t.Errorf("profiled %d, want 1", p.Instructions)
	}
	if p.String() == "" {
		t.Error("String should render")
	}
	// Empty profile accessors must not divide by zero.
	var empty Profile
	if empty.MemFraction() != 0 || empty.BranchFraction() != 0 ||
		empty.FpFraction() != 0 || empty.ClassFraction(isa.IntAlu) != 0 {
		t.Error("empty profile fractions should be 0")
	}
}

func TestPublicBuilder(t *testing.T) {
	r1, r2 := isa.IntReg(1), isa.IntReg(2)
	b := NewBuilder("custom", 0x1000)
	b.Block("top")
	b.Op(isa.IntAlu, r1, r1, isa.IntReg(30))
	b.Load(r2, r1, 8, StreamAddr(0x8000, 1<<12, 8))
	b.LoadIndexed(isa.IntReg(3), isa.IntReg(30), r2, 8, RandAddr(3, 0x9000, 1<<12, 8))
	b.Store(isa.IntReg(3), r2, 8, RandAddr(4, 0xa000, 1<<12, 8))
	b.Branch(isa.IntReg(10), "top", LoopTaken(4))
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "custom" {
		t.Error("name")
	}
	seen := 0
	for i := 0; i < 40; i++ {
		in, ok := s.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("inst %d invalid: %v", i, err)
		}
		if in.Class == isa.Branch && in.Taken {
			seen++
		}
	}
	if seen == 0 {
		t.Error("loop branch never taken")
	}
	// Builder errors propagate.
	bad := NewBuilder("bad", 0)
	bad.Block("x")
	bad.Branch(1, "nowhere", func() bool { return true })
	if _, err := bad.Build(); err == nil {
		t.Error("unknown target should fail Build")
	}
	// Jump helper compiles to an always-taken branch.
	j := NewBuilder("j", 0)
	j.Block("top")
	j.Op(isa.IntAlu, r1, r1, r2)
	j.Jump("top")
	js, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		in, _ := js.Next()
		if in.Class == isa.Branch && !in.Taken {
			t.Fatal("Jump must always be taken")
		}
	}
	// Prob is deterministic per seed.
	p1, p2 := Prob(5, 0.5), Prob(5, 0.5)
	for i := 0; i < 50; i++ {
		if p1() != p2() {
			t.Fatal("Prob not deterministic")
		}
	}
}
