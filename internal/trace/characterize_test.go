package trace

import (
	"math"
	"testing"

	"repro/internal/isa"
)

// TestChainProfileExact pins the dependence-window machinery on a
// hand-computed four-instruction dataflow graph:
//
//	i0: r1 = r2 op r3   depth 1
//	i1: r4 = r1 op r1   depth 2
//	i2: r5 = r4 op r1   depth 3
//	i3: r6 = r2 op r3   depth 1 (independent)
func TestChainProfileExact(t *testing.T) {
	ins := []isa.Inst{
		{PC: 0x10, Class: isa.IntAlu, Src1: 2, Src2: 3, Dest: 1},
		{PC: 0x14, Class: isa.IntAlu, Src1: 1, Src2: 1, Dest: 4},
		{PC: 0x18, Class: isa.IntAlu, Src1: 4, Src2: 1, Dest: 5},
		{PC: 0x1c, Class: isa.IntAlu, Src1: 2, Src2: 3, Dest: 6},
	}
	p := Characterize(FromSlice("dag", ins), len(ins))

	if p.Instructions != 4 {
		t.Fatalf("instructions = %d, want 4", p.Instructions)
	}
	// Depths 1,2,3,1: two in bucket 0 (depth 1), two in bucket 1 (2-3).
	wantDepth := [ChainBuckets]int{0: 2, 1: 2}
	if p.DepthHist != wantDepth {
		t.Errorf("DepthHist = %v, want %v", p.DepthHist, wantDepth)
	}
	// Level widths: depth1 holds 2 instructions, depths 2 and 3 hold one
	// each: two levels in bucket 0 (width 1), one in bucket 1 (width 2).
	wantWidth := [ChainBuckets]int{0: 2, 1: 1}
	if p.WidthHist != wantWidth {
		t.Errorf("WidthHist = %v, want %v", p.WidthHist, wantWidth)
	}
	if got, want := p.MeanChainDepth, 7.0/4; math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanChainDepth = %v, want %v", got, want)
	}
	if got, want := p.MeanChainWidth, 4.0/3; math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanChainWidth = %v, want %v", got, want)
	}
	if p.CritPathWin != 3 || p.CritPathSub != 3 {
		t.Errorf("crit paths = %v/%v, want 3/3", p.CritPathSub, p.CritPathWin)
	}
	// The walked critical path is i2 <- i1 <- i0, all IntAlu.
	if got := p.CritClassFrac[isa.IntAlu]; got != 1 {
		t.Errorf("CritClassFrac[IntAlu] = %v, want 1", got)
	}
	if got, want := p.MixFrac[isa.IntAlu], 1.0; got != want {
		t.Errorf("MixFrac[IntAlu] = %v, want %v", got, want)
	}
}

// TestChainProfileWindowBoundary checks that full windows are folded in
// exactly once: every instruction lands in the depth histogram whether
// the stream ends on a window boundary or not.
func TestChainProfileWindowBoundary(t *testing.T) {
	for _, n := range []int{ChainWindow, ChainWindow + 7, 3*ChainWindow + 1, ChainSubWindow} {
		ins := make([]isa.Inst, n)
		for i := range ins {
			// A single serial chain: r1 = r1 op r1.
			ins[i] = isa.Inst{PC: 0x10, Class: isa.IntAlu, Src1: 1, Src2: 1, Dest: 1}
		}
		p := Characterize(FromSlice("serial", ins), n)
		total := 0
		for _, c := range p.DepthHist {
			total += c
		}
		if total != n {
			t.Errorf("n=%d: depth histogram holds %d instructions", n, total)
		}
		// A serial chain's critical path spans the whole window.
		if n >= ChainWindow && p.CritPathWin != ChainWindow {
			t.Errorf("n=%d: CritPathWin = %v, want %v", n, p.CritPathWin, ChainWindow)
		}
		if p.CritPathSub != ChainSubWindow {
			t.Errorf("n=%d: CritPathSub = %v, want %v", n, p.CritPathSub, ChainSubWindow)
		}
	}
}

// TestWorkloadChainShapes pins the new profile dimensions on the bundled
// workloads: the dependence and predictability contrasts the analytic
// model relies on (DESIGN.md §2's substitution contract, extended).
func TestWorkloadChainShapes(t *testing.T) {
	prof := make(map[string]Profile)
	for _, name := range Names() {
		prof[name] = Characterize(mustNew(t, name), 50000)
	}

	for name, p := range prof {
		// Mix fractions must mirror ClassFraction and sum to one.
		sum := 0.0
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			if p.MixFrac[c] != p.ClassFraction(c) {
				t.Errorf("%s: MixFrac[%v] = %v != ClassFraction %v", name, c, p.MixFrac[c], p.ClassFraction(c))
			}
			sum += p.MixFrac[c]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: mix fractions sum to %v", name, sum)
		}
		// Critical paths grow with window size but stay below it.
		if p.CritPathWin <= p.CritPathSub {
			t.Errorf("%s: crit path %v/%d not above %v/%d", name, p.CritPathWin, ChainWindow, p.CritPathSub, ChainSubWindow)
		}
		if p.CritPathWin > ChainWindow || p.CritPathSub > ChainSubWindow {
			t.Errorf("%s: crit path exceeds its window (%v/%v)", name, p.CritPathSub, p.CritPathWin)
		}
		if p.MeanChainDepth < 1 || p.MeanChainWidth < 1 {
			t.Errorf("%s: degenerate chain stats depth=%v width=%v", name, p.MeanChainDepth, p.MeanChainWidth)
		}
	}

	// twolf chases pointers: its window critical paths are load-dominated.
	if got := prof["twolf"].CritClassFrac[isa.Load]; got < 0.5 {
		t.Errorf("twolf: crit-path load fraction %.2f, want pointer-chasing (>0.5)", got)
	}
	// swim's serial bottleneck is its loop-carried integer recurrences,
	// not memory.
	if got := prof["swim"].CritClassFrac[isa.Load]; got > 0.3 {
		t.Errorf("swim: crit-path load fraction %.2f, want streaming (<0.3)", got)
	}

	// Branch predictability: the stencil codes are near-perfectly
	// predictable, gcc is not — by an order of magnitude.
	if got := prof["mgrid"].BranchLocalMiss; got > 0.05 {
		t.Errorf("mgrid: local-predictor miss %.3f, want near-perfect", got)
	}
	if got := prof["gcc"].BranchLocalMiss; got < 0.10 {
		t.Errorf("gcc: local-predictor miss %.3f, want hard-to-predict (>0.10)", got)
	}
	if prof["gcc"].BranchLocalMiss < 5*prof["swim"].BranchLocalMiss {
		t.Errorf("gcc local miss %.3f not well above swim's %.3f",
			prof["gcc"].BranchLocalMiss, prof["swim"].BranchLocalMiss)
	}
	if prof["gcc"].BranchEntropy < 0.3 || prof["mgrid"].BranchEntropy > 0.05 {
		t.Errorf("branch entropy gcc %.2f / mgrid %.2f, want >0.3 / <0.05",
			prof["gcc"].BranchEntropy, prof["mgrid"].BranchEntropy)
	}
	// Bias-miss floors: predictable loops sit at ~0.
	if got := prof["swim"].BranchBiasMiss; got > 0.02 {
		t.Errorf("swim: bias miss %.3f, want ~0", got)
	}

	// Streaming proxy: equake streams new lines; gcc is resident.
	if got := prof["equake"].NewLinesPerLoad; got < 0.4 {
		t.Errorf("equake: new-line/load %.2f, want streaming", got)
	}
	if got := prof["gcc"].NewLinesPerLoad; got > 0.25 {
		t.Errorf("gcc: new-line/load %.2f, want resident", got)
	}

	// ILP contrast: the stencils expose wider levels than the pointer
	// chaser.
	if prof["mgrid"].MeanChainWidth <= prof["twolf"].MeanChainWidth {
		t.Errorf("mgrid width %.1f not above twolf %.1f",
			prof["mgrid"].MeanChainWidth, prof["twolf"].MeanChainWidth)
	}
}
