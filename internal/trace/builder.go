package trace

import "repro/internal/isa"

// Builder is the public workload-construction API: a thin, validated
// wrapper over the kernel template machinery the built-in benchmarks use.
// A workload is a loop nest of labelled basic blocks of static
// instructions; memory addresses and branch outcomes come from callbacks
// evaluated per dynamic instance, so PC-indexed predictors see a stable
// static program. Build returns a deterministic Stream that replays the
// template forever (control returns to the first block).
//
//	b := trace.NewBuilder("mykernel", 0x40_0000)
//	b.Block("top")
//	b.Op(isa.IntAlu, r1, r1, r2)
//	b.Load(f0, r1, 8, cursor.Next)
//	b.Branch(r3, "top", trace.LoopTaken(100))
//	s, err := b.Build()
type Builder struct {
	k *kernelBuilder
}

// NewBuilder starts a workload named name whose static instructions get
// PCs from pcBase upward.
func NewBuilder(name string, pcBase uint64) *Builder {
	return &Builder{k: newKernel(name, pcBase)}
}

// Block starts a new basic block with a unique label.
func (b *Builder) Block(label string) { b.k.block(label) }

// Op adds a register-to-register operation of the given class.
func (b *Builder) Op(class isa.Class, dest, src1, src2 int) { b.k.op(class, dest, src1, src2) }

// Load adds a load of size bytes: addrReg is the register dependence of
// the effective-address calculation; addr yields the dynamic address.
func (b *Builder) Load(dest, addrReg int, size uint8, addr func() uint64) {
	b.k.load(dest, addrReg, size, addr)
}

// LoadIndexed adds a load whose address depends on two registers
// (base + index), the shape that creates two-chain instructions.
func (b *Builder) LoadIndexed(dest, baseReg, indexReg int, size uint8, addr func() uint64) {
	b.k.load2(dest, baseReg, indexReg, size, addr)
}

// Store adds a store of dataReg to the address formed from addrReg.
func (b *Builder) Store(dataReg, addrReg int, size uint8, addr func() uint64) {
	b.k.store(dataReg, addrReg, size, addr)
}

// Branch adds a conditional branch on condReg to the named block; taken
// decides each dynamic outcome (and may advance counters).
func (b *Builder) Branch(condReg int, target string, taken func() bool) {
	b.k.branch(condReg, target, taken)
}

// Jump adds an always-taken branch to the named block.
func (b *Builder) Jump(target string) { b.k.jump(target) }

// Build validates the template (labels resolve, memory ops carry address
// callbacks, no empty blocks) and returns the stream.
func (b *Builder) Build() (Stream, error) { return b.k.build() }

// LoopTaken returns a branch-outcome callback for a counted loop: taken
// n-1 times, then not taken once, repeating.
func LoopTaken(n int) func() bool { return loopTaken(n) }

// Prob returns a branch-outcome callback taken with probability p, drawn
// from a deterministic generator seeded with seed.
func Prob(seed uint64, p float64) func() bool {
	r := newRNG(seed)
	return probTaken(r, p)
}

// StreamAddr returns an address callback walking [base, base+size) with
// the given stride, wrapping at the end — a streaming array access.
func StreamAddr(base, size, stride uint64) func() uint64 {
	c := &streamCursor{base: base, size: size, stride: stride}
	return c.next
}

// RandAddr returns an address callback hitting uniformly random
// align-aligned slots in [base, base+size) — pointer-chase or gather
// access — drawn deterministically from seed.
func RandAddr(seed, base, size, align uint64) func() uint64 {
	c := newRandCursor(newRNG(seed), base, size, align)
	return c.next
}
