// Package trace generates the dynamic instruction streams that drive the
// simulator.
//
// The paper evaluates on SPEC CPU2000 Alpha binaries (ammp, applu, equake,
// gcc, mgrid, swim, twolf, vortex). Those binaries and checkpoints are not
// available here, so this package substitutes deterministic synthetic
// workload generators, one per benchmark, that reproduce the properties the
// paper's evaluation depends on: instruction mix, dependence-chain shape
// (streaming vs. pointer-chasing vs. indirection), working-set sizes (hence
// L1/L2/memory miss rates and delayed hits), branch predictability, and
// instruction-level parallelism. See DESIGN.md §2 for the substitution
// rationale.
//
// Each workload is a small loop nest expressed as a template of static
// instructions with fixed PCs, so that PC-indexed predictors (branch
// predictor, hit/miss predictor, left/right predictor) observe a stable
// static instruction stream, exactly as they would running a real binary.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Stream produces a dynamic instruction trace. Implementations are
// deterministic: two streams constructed with the same arguments produce
// identical instruction sequences.
type Stream interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next dynamic instruction. ok is false when the
	// stream is exhausted; generators for the SPEC-like workloads never
	// exhaust.
	Next() (in isa.Inst, ok bool)
}

// Constructor builds a fresh Stream for a named workload; seed selects
// the deterministic random sequence used for data-dependent behaviour.
type Constructor func(seed uint64) Stream

// Benchmarks maps the eight workload names used in the paper's evaluation
// to their generator constructors.
var Benchmarks = map[string]Constructor{
	"ammp":   NewAmmp,
	"applu":  NewApplu,
	"equake": NewEquake,
	"gcc":    NewGcc,
	"mgrid":  NewMgrid,
	"swim":   NewSwim,
	"twolf":  NewTwolf,
	"vortex": NewVortex,
}

// Names returns the benchmark names in sorted order.
func Names() []string {
	names := make([]string, 0, len(Benchmarks))
	for n := range Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New constructs the named workload, or an error if unknown.
func New(name string, seed uint64) (Stream, error) {
	b, ok := Benchmarks[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown benchmark %q (have %v)", name, Names())
	}
	return b(seed), nil
}

// Limited wraps a stream and ends it after n instructions.
type Limited struct {
	s    Stream
	left int64
}

// Limit returns a stream that yields at most n instructions from s.
func Limit(s Stream, n int64) *Limited {
	return &Limited{s: s, left: n}
}

// Name implements Stream.
func (l *Limited) Name() string { return l.s.Name() }

// Next implements Stream.
func (l *Limited) Next() (isa.Inst, bool) {
	if l.left <= 0 {
		return isa.Inst{}, false
	}
	l.left--
	return l.s.Next()
}

// SliceStream replays a fixed slice of instructions; used by tests and the
// worked Figure 1 example.
type SliceStream struct {
	name string
	ins  []isa.Inst
	pos  int
}

// FromSlice builds a stream that yields the given instructions once.
func FromSlice(name string, ins []isa.Inst) *SliceStream {
	return &SliceStream{name: name, ins: ins}
}

// Name implements Stream.
func (s *SliceStream) Name() string { return s.name }

// Next implements Stream.
func (s *SliceStream) Next() (isa.Inst, bool) {
	if s.pos >= len(s.ins) {
		return isa.Inst{}, false
	}
	in := s.ins[s.pos]
	s.pos++
	return in, true
}

// Take drains up to n instructions from s into a slice.
func Take(s Stream, n int) []isa.Inst {
	out := make([]isa.Inst, 0, n)
	for len(out) < n {
		in, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}
