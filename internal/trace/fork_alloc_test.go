package trace

import (
	"testing"

	"repro/internal/isa"
)

type countStream struct{ n int64 }

func (s *countStream) Name() string { return "count" }
func (s *countStream) Next() (isa.Inst, bool) {
	s.n++
	return isa.Inst{}, true
}

// TestTrimRecyclesChunks pins that a trimming source reuses its memo
// chunks instead of reallocating one per forkChunk instructions: a
// warmup-style pass (one cursor, live trimming from the origin) must
// stay at a handful of allocations per chunk's worth of instructions,
// not one 200+ KiB array each.
func TestTrimRecyclesChunks(t *testing.T) {
	if raceDetector {
		t.Skip("sync.Pool drops items under the race detector; allocation bounds do not hold")
	}
	src := NewForkSource(&countStream{})
	src.TrimBefore(0)
	cur := src.Fork()
	for i := 0; i < 4*forkChunk; i++ { // warm the pool
		cur.Next()
	}
	if avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < forkChunk; i++ {
			cur.Next()
		}
	}); avg > 8 {
		t.Errorf("one chunk's worth of trimmed replay = %.0f allocs, want <= 8 — memo chunks are not being recycled", avg)
	}
}
