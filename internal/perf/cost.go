package perf

import (
	"strings"

	"repro/internal/trace"
)

// Per-point cost estimation for the sweep coordinator. A static
// round-robin partition (-shard i/n) balances heterogeneous grids
// poorly: per-point cost varies by workload (swim's long dependence
// chains simulate several times slower per instruction than gcc) and
// by context count, so one shard can finish long before another. The
// coordinator instead orders its job queue most-expensive-first
// (longest-processing-time scheduling) using measured wall-clock cost
// from the newest checked-in BENCH_<n>.json baseline, falling back to
// an instruction-count heuristic for workloads the baseline never
// measured.

// CostModel prices one grid point: wall nanoseconds per simulated
// instruction per workload, measured from a perf baseline's pinned
// machine workloads. The zero value (and a nil model) price purely by
// instruction count, which still orders SMT points above
// single-context ones.
type CostModel struct {
	nsPerInst map[string]float64
	defaultNs float64
}

// NewCostModel builds a cost model from a measured baseline. Each
// machine workload with simulated-instruction telemetry contributes
// its ns-per-simulated-instruction to every benchmark named in its
// workload name ("table1_segmented_swim" prices swim;
// "smt_sweep5_swim_twolf_cold" prices swim and twolf); a benchmark
// measured by several workloads gets their mean. Benchmarks the
// baseline never measured are priced at the mean over measured ones.
func NewCostModel(b Baseline) *CostModel {
	known := make(map[string]bool)
	for _, name := range trace.Names() {
		known[name] = true
	}
	sum := make(map[string]float64)
	n := make(map[string]int)
	for _, w := range b.Workloads {
		if w.SimInstructions <= 0 || w.NsPerOp <= 0 {
			continue
		}
		perInst := w.NsPerOp / float64(w.SimInstructions)
		for _, tok := range strings.Split(w.Name, "_") {
			if known[tok] {
				sum[tok] += perInst
				n[tok]++
			}
		}
	}
	m := &CostModel{nsPerInst: make(map[string]float64, len(sum))}
	var total float64
	for bench, s := range sum {
		v := s / float64(n[bench])
		m.nsPerInst[bench] = v
		total += v
	}
	if len(m.nsPerInst) > 0 {
		m.defaultNs = total / float64(len(m.nsPerInst))
	}
	return m
}

// LoadCostModel reads the highest-numbered BENCH_<n>.json in dir (via
// LatestBaseline) and builds a cost model from it. An error means no
// usable baseline; callers fall back to a nil model (instruction-count
// costs) rather than failing.
func LoadCostModel(dir string) (*CostModel, error) {
	path, err := LatestBaseline(dir)
	if err != nil {
		return nil, err
	}
	b, err := ReadJSON(path)
	if err != nil {
		return nil, err
	}
	return NewCostModel(b), nil
}

// Cost estimates the wall cost of one grid point: workload is the
// "+"-joined context set, insts the measured instructions per point.
// With measured data the unit is nanoseconds; without, it degrades to
// instruction counts — either way costs are comparable within one
// grid, which is all ordering needs.
func (m *CostModel) Cost(workload string, insts int64) float64 {
	var total float64
	for _, part := range strings.Split(workload, "+") {
		ns := 1.0
		if m != nil && len(m.nsPerInst) > 0 {
			ns = m.defaultNs
			if v, ok := m.nsPerInst[part]; ok {
				ns = v
			}
		}
		total += ns * float64(insts)
	}
	return total
}
