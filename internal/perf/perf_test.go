package perf

import (
	"path/filepath"
	"testing"
)

func TestBaselineJSONRoundTrip(t *testing.T) {
	b := Baseline{
		Schema:    Schema,
		GoVersion: "go0.0-test",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Workloads: []Metrics{
			{Name: "cycle", Iterations: 100, NsPerOp: 123.4, BytesPerOp: 8, AllocsPerOp: 1},
			{Name: "machine", Iterations: 3, NsPerOp: 9e6, SimInstructions: 10000,
				SimCycles: 7000, SimMIPS: 1.2, NsPerSimCycle: 1285.7, SimIPC: 1.42},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != b.Schema || got.GoVersion != b.GoVersion || len(got.Workloads) != 2 {
		t.Fatalf("round trip mangled baseline: %+v", got)
	}
	if got.Workloads[1] != b.Workloads[1] {
		t.Errorf("workload metrics changed in round trip:\n got %+v\nwant %+v",
			got.Workloads[1], b.Workloads[1])
	}
}

func TestReadJSONMissingFile(t *testing.T) {
	if _, err := ReadJSON(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
