package perf

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

func TestBaselineJSONRoundTrip(t *testing.T) {
	b := Baseline{
		Schema:    Schema,
		GoVersion: "go0.0-test",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Workloads: []Metrics{
			{Name: "cycle", Iterations: 100, NsPerOp: 123.4, BytesPerOp: 8, AllocsPerOp: 1},
			{Name: "machine", Iterations: 3, NsPerOp: 9e6, SimInstructions: 10000,
				SimCycles: 7000, SimMIPS: 1.2, NsPerSimCycle: 1285.7, SimIPC: 1.42},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != b.Schema || got.GoVersion != b.GoVersion || len(got.Workloads) != 2 {
		t.Fatalf("round trip mangled baseline: %+v", got)
	}
	if got.Workloads[1] != b.Workloads[1] {
		t.Errorf("workload metrics changed in round trip:\n got %+v\nwant %+v",
			got.Workloads[1], b.Workloads[1])
	}
}

func TestReadJSONMissingFile(t *testing.T) {
	if _, err := ReadJSON(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := Baseline{Schema: Schema, Workloads: []Metrics{
		{Name: "cycle", NsPerOp: 1000, AllocsPerOp: 8},
		{Name: "machine", NsPerOp: 1e6, AllocsPerOp: 100, SimInstructions: 10_000, SimCycles: 6000},
		{Name: "gone", NsPerOp: 500},
	}}
	cur := Baseline{Schema: Schema, Workloads: []Metrics{
		{Name: "cycle", NsPerOp: 1600, AllocsPerOp: 8},                                              // +60% time
		{Name: "machine", NsPerOp: 1e6, AllocsPerOp: 100, SimInstructions: 10_000, SimCycles: 6001}, // behaviour drift
	}}
	warnings := Compare(base, cur, 0.5)
	if len(warnings) != 3 {
		t.Fatalf("want 3 warnings (slowdown, cycle drift, missing workload), got %d: %v",
			len(warnings), warnings)
	}
}

func TestCompareCleanWithinThreshold(t *testing.T) {
	base := Baseline{Schema: Schema, Workloads: []Metrics{
		{Name: "machine", NsPerOp: 1e6, AllocsPerOp: 100, SimInstructions: 10_000, SimCycles: 6000},
	}}
	cur := Baseline{Schema: Schema, Workloads: []Metrics{
		{Name: "machine", NsPerOp: 1.3e6, AllocsPerOp: 110, SimInstructions: 10_000, SimCycles: 6000},
		{Name: "brand-new", NsPerOp: 42},
	}}
	if warnings := Compare(base, cur, 0.5); len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
}

// TestLatestBaseline: the auto-baseline picker takes the highest-numbered
// BENCH_<n>.json, compares numerically (BENCH_10 beats BENCH_9), ignores
// lookalike names, and errors when no baseline exists.
func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	if _, err := LatestBaseline(dir); err == nil {
		t.Fatal("expected error for a directory with no baselines")
	}
	for _, name := range []string{
		"BENCH_2.json", "BENCH_9.json", "BENCH_10.json",
		"BENCH_3.json.bak", "BENCH_x.json", "NOTBENCH_99.json",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_10.json"); got != want {
		t.Fatalf("LatestBaseline = %q, want %q", got, want)
	}
}

// TestSweepVariantsSimulateIdentically: the cold, forked and
// prefix-shared sweep workloads must simulate exactly the same
// instructions and cycles — the forked variant only skips redundant
// warmups, and the prefix variant only skips cycles its demand curves
// prove identical; neither ever changes what is simulated. The prefix
// variant must also actually share on the pinned grid — its segmented
// family contains a never-binding sibling — or the sweep6 pair measures
// nothing.
func TestSweepVariantsSimulateIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep variants in -short mode")
	}
	ci, cc, err := sweepCold(false)
	if err != nil {
		t.Fatal(err)
	}
	fi, fc, err := sweepForked(false)
	if err != nil {
		t.Fatal(err)
	}
	if ci != fi || cc != fc {
		t.Fatalf("cold sweep simulated (%d insts, %d cycles), forked (%d, %d)", ci, cc, fi, fc)
	}
	var ps sim.PrefixStats
	pi, pc, err := sweepPrefix(false, &ps)
	if err != nil {
		t.Fatal(err)
	}
	if ci != pi || cc != pc {
		t.Fatalf("cold sweep simulated (%d insts, %d cycles), prefix-shared (%d, %d)", ci, cc, pi, pc)
	}
	if ps.Families.Load() != 1 || ps.Shared.Load() == 0 {
		t.Errorf("pinned grid shared nothing: %s", ps.String())
	}
	t.Logf("prefix: %s", ps.String())
}

// TestGroupFamiliesSweepSiblings pins that configs differing only in
// swept bounds land in one family, in grid order: the whole point of
// grouping is that a size sweep forms a single prefix-sharing family.
func TestGroupFamiliesSweepSiblings(t *testing.T) {
	grid := []sim.Config{
		sim.DefaultConfig(sim.QueueIdeal, 512),
		sim.DefaultConfig(sim.QueueIdeal, 128),
		sim.DefaultConfig(sim.QueueIdeal, 32),
	}
	fams := groupFamilies(grid)
	if len(fams) != 1 {
		t.Fatalf("ideal size sweep split into %d families, want 1", len(fams))
	}
	for i, cfg := range fams[0] {
		if cfg != grid[i] {
			t.Errorf("family[%d] = iq%d, grid order not preserved", i, cfg.QueueSize)
		}
	}
}

// TestGroupFamiliesSingletons pins the opposite edge: configs that
// differ in a non-swept dimension (machine width) each form a singleton
// family — sharing a prefix across different machines would be unsound,
// so the grouping must fall back to one-config families.
func TestGroupFamiliesSingletons(t *testing.T) {
	grid := make([]sim.Config, 0, 3)
	for _, w := range []int{8, 4, 2} {
		c := sim.DefaultConfig(sim.QueueIdeal, 256)
		c.FetchWidth, c.DispatchWidth, c.IssueWidth, c.CommitWidth = w, w, w, w
		grid = append(grid, c)
	}
	fams := groupFamilies(grid)
	if len(fams) != len(grid) {
		t.Fatalf("width variants grouped into %d families, want %d singletons", len(fams), len(grid))
	}
	for i, fam := range fams {
		if len(fam) != 1 || fam[0] != grid[i] {
			t.Errorf("family %d = %d configs, want singleton grid[%d]", i, len(fam), i)
		}
	}
}

// TestGroupFamiliesMultiDimension pins grouping on a grid that sweeps
// several dimensions at once — designs interleaved with sizes, the shape
// a mega-grid enumeration produces. Families must split by design (and
// any other non-swept axis) while collecting every size under it, and
// family order must follow first appearance in the grid.
func TestGroupFamiliesMultiDimension(t *testing.T) {
	grid := []sim.Config{
		sim.DefaultConfig(sim.QueueIdeal, 32),
		sim.SegmentedConfig(512, 0, true, true),
		sim.DefaultConfig(sim.QueueIdeal, 64),
		sim.SegmentedConfig(512, 128, true, true),
		sim.FIFOConfig(64),
		sim.SegmentedConfig(512, 320, true, true),
	}
	fams := groupFamilies(grid)
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3 (ideal, segmented, fifos)", len(fams))
	}
	wantOrder := []sim.QueueKind{sim.QueueIdeal, sim.QueueSegmented, sim.QueueFIFO}
	wantSize := []int{2, 3, 1}
	total := 0
	for i, fam := range fams {
		if fam[0].Queue != wantOrder[i] {
			t.Errorf("family %d is %v, want %v (first-appearance order)", i, fam[0].Queue, wantOrder[i])
		}
		if len(fam) != wantSize[i] {
			t.Errorf("family %d has %d members, want %d", i, len(fam), wantSize[i])
		}
		total += len(fam)
	}
	if total != len(grid) {
		t.Errorf("families hold %d configs, grid has %d", total, len(grid))
	}

	// Stability: grouping is deterministic — same grid, same split.
	again := groupFamilies(grid)
	if len(again) != len(fams) {
		t.Fatalf("regrouping gave %d families, want %d", len(again), len(fams))
	}
	for i := range fams {
		for j := range fams[i] {
			if fams[i][j] != again[i][j] {
				t.Errorf("family[%d][%d] differs between identical calls", i, j)
			}
		}
	}
}
