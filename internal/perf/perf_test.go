package perf

import (
	"path/filepath"
	"testing"
)

func TestBaselineJSONRoundTrip(t *testing.T) {
	b := Baseline{
		Schema:    Schema,
		GoVersion: "go0.0-test",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Workloads: []Metrics{
			{Name: "cycle", Iterations: 100, NsPerOp: 123.4, BytesPerOp: 8, AllocsPerOp: 1},
			{Name: "machine", Iterations: 3, NsPerOp: 9e6, SimInstructions: 10000,
				SimCycles: 7000, SimMIPS: 1.2, NsPerSimCycle: 1285.7, SimIPC: 1.42},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != b.Schema || got.GoVersion != b.GoVersion || len(got.Workloads) != 2 {
		t.Fatalf("round trip mangled baseline: %+v", got)
	}
	if got.Workloads[1] != b.Workloads[1] {
		t.Errorf("workload metrics changed in round trip:\n got %+v\nwant %+v",
			got.Workloads[1], b.Workloads[1])
	}
}

func TestReadJSONMissingFile(t *testing.T) {
	if _, err := ReadJSON(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := Baseline{Schema: Schema, Workloads: []Metrics{
		{Name: "cycle", NsPerOp: 1000, AllocsPerOp: 8},
		{Name: "machine", NsPerOp: 1e6, AllocsPerOp: 100, SimInstructions: 10_000, SimCycles: 6000},
		{Name: "gone", NsPerOp: 500},
	}}
	cur := Baseline{Schema: Schema, Workloads: []Metrics{
		{Name: "cycle", NsPerOp: 1600, AllocsPerOp: 8},                                              // +60% time
		{Name: "machine", NsPerOp: 1e6, AllocsPerOp: 100, SimInstructions: 10_000, SimCycles: 6001}, // behaviour drift
	}}
	warnings := Compare(base, cur, 0.5)
	if len(warnings) != 3 {
		t.Fatalf("want 3 warnings (slowdown, cycle drift, missing workload), got %d: %v",
			len(warnings), warnings)
	}
}

func TestCompareCleanWithinThreshold(t *testing.T) {
	base := Baseline{Schema: Schema, Workloads: []Metrics{
		{Name: "machine", NsPerOp: 1e6, AllocsPerOp: 100, SimInstructions: 10_000, SimCycles: 6000},
	}}
	cur := Baseline{Schema: Schema, Workloads: []Metrics{
		{Name: "machine", NsPerOp: 1.3e6, AllocsPerOp: 110, SimInstructions: 10_000, SimCycles: 6000},
		{Name: "brand-new", NsPerOp: 42},
	}}
	if warnings := Compare(base, cur, 0.5); len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
}

// TestSweepVariantsSimulateIdentically: the cold and forked sweep
// workloads must simulate exactly the same instructions and cycles — the
// forked variant only skips redundant warmups, never work.
func TestSweepVariantsSimulateIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep pair in -short mode")
	}
	ci, cc, err := sweepCold()
	if err != nil {
		t.Fatal(err)
	}
	fi, fc, err := sweepForked()
	if err != nil {
		t.Fatal(err)
	}
	if ci != fi || cc != fc {
		t.Fatalf("cold sweep simulated (%d insts, %d cycles), forked (%d, %d)", ci, cc, fi, fc)
	}
}
