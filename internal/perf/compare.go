package perf

import "fmt"

// Compare checks a fresh capture against a stored baseline and returns
// one human-readable warning per suspected regression. threshold is the
// tolerated fractional slowdown for the timing numbers (0.5 = 50%) —
// generous on purpose, since captures from different machines differ by
// far more than any single code change. Two checks are exact regardless
// of threshold: simulated instruction and cycle counts must not move
// between captures of the same pinned workload (the simulator is
// deterministic; a drift means behaviour changed, not speed), and a
// workload present in the baseline must still be measured.
//
// An empty result means no regression detected. Callers decide severity;
// the CI gate prints the warnings without failing the build.
func Compare(baseline, current Baseline, threshold float64) []string {
	var warnings []string
	if baseline.Schema != current.Schema {
		warnings = append(warnings, fmt.Sprintf(
			"schema mismatch: baseline %d vs current %d; comparisons may be meaningless",
			baseline.Schema, current.Schema))
	}
	cur := make(map[string]Metrics, len(current.Workloads))
	for _, w := range current.Workloads {
		cur[w.Name] = w
	}
	for _, b := range baseline.Workloads {
		c, ok := cur[b.Name]
		if !ok {
			warnings = append(warnings, fmt.Sprintf(
				"%s: present in baseline but not measured in current capture", b.Name))
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+threshold) {
			warnings = append(warnings, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f (+%.0f%%, threshold %.0f%%)",
				b.Name, c.NsPerOp, b.NsPerOp,
				100*(c.NsPerOp/b.NsPerOp-1), 100*threshold))
		}
		if b.AllocsPerOp > 0 && float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+threshold) {
			warnings = append(warnings, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d (+%.0f%%, threshold %.0f%%)",
				b.Name, c.AllocsPerOp, b.AllocsPerOp,
				100*(float64(c.AllocsPerOp)/float64(b.AllocsPerOp)-1), 100*threshold))
		}
		if b.SimInstructions != 0 && c.SimInstructions != b.SimInstructions {
			warnings = append(warnings, fmt.Sprintf(
				"%s: simulated %d instructions vs baseline %d — simulated behaviour changed",
				b.Name, c.SimInstructions, b.SimInstructions))
		}
		if b.SimCycles != 0 && c.SimCycles != b.SimCycles {
			warnings = append(warnings, fmt.Sprintf(
				"%s: simulated %d cycles vs baseline %d — simulated behaviour changed",
				b.Name, c.SimCycles, b.SimCycles))
		}
	}
	return warnings
}
