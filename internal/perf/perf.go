// Package perf measures the simulator's own performance — wall-clock
// time, allocation behaviour and simulation throughput of the hot paths —
// and serialises the result as a reproducible JSON baseline (the
// BENCH_*.json files at the repository root). The workloads are pinned:
// the same configurations, seeds and instruction budgets every run, so
// two baselines taken on the same machine differ only by the speed of the
// code, not by what was simulated.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uop"
)

// Schema identifies the BENCH json layout; bump it when fields change
// meaning.
const Schema = 1

// Metrics reports one measured workload.
type Metrics struct {
	// Name identifies the pinned workload.
	Name string `json:"name"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp / BytesPerOp / AllocsPerOp are the standard Go benchmark
	// numbers for one operation (one simulated cycle for the cycle-loop
	// workloads, one full run for the machine workloads).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	// The machine workloads also report what they simulated: instructions
	// and cycles per run, simulation speed in simulated million
	// instructions per wall-clock second, wall nanoseconds per simulated
	// cycle, and the simulated IPC (a correctness cross-check — it must
	// not move between baselines).
	SimInstructions int64   `json:"sim_instructions,omitempty"`
	SimCycles       int64   `json:"sim_cycles,omitempty"`
	SimMIPS         float64 `json:"sim_mips,omitempty"`
	NsPerSimCycle   float64 `json:"ns_per_sim_cycle,omitempty"`
	SimIPC          float64 `json:"sim_ipc,omitempty"`

	// SkippedCycles / SkipWindows report the event-driven idle-cycle
	// skipping activity of the machine workloads: how many of SimCycles
	// were elided rather than stepped, and in how many windows. Telemetry
	// only — skipping is bit-identical, so SimCycles and SimIPC are
	// unaffected. Absent (zero) in baselines predating the skipper.
	SkippedCycles int64 `json:"skipped_cycles,omitempty"`
	SkipWindows   int64 `json:"skip_windows,omitempty"`

	// The prefix-sharing sweep variants also report their sharing
	// outcomes: how many multi-member families carried a snapshot ladder,
	// how many siblings shared the reference's prefix versus fell back to
	// a cold fork, and how many of the total simulated cycles were not
	// re-simulated. Sharing is bit-identical, so SimInstructions and
	// SimCycles still match the cold and forked variants exactly.
	PrefixFamilies     int64 `json:"prefix_families,omitempty"`
	PrefixShared       int64 `json:"prefix_shared,omitempty"`
	PrefixFallbacks    int64 `json:"prefix_fallbacks,omitempty"`
	PrefixSharedCycles int64 `json:"prefix_shared_cycles,omitempty"`
	PrefixTotalCycles  int64 `json:"prefix_total_cycles,omitempty"`

	// The pre-screened sweep workload reports its screening outcome:
	// grid points scored analytically, the points actually simulated
	// (predicted frontier plus audit sample), the frontier's size, and
	// the estimator's audit accuracy. Like the prefix_* counters, these
	// live in the perf baseline and deliberately NOT in shard files —
	// shard output stays byte-identical whether a sweep was screened,
	// prefix-shared, or run cold.
	PrescreenScreened  int64   `json:"prescreen_screened,omitempty"`
	PrescreenSimulated int64   `json:"prescreen_simulated,omitempty"`
	PrescreenFrontier  int64   `json:"prescreen_frontier,omitempty"`
	PrescreenAuditRho  float64 `json:"prescreen_audit_rho,omitempty"`
	PrescreenAuditMAPE float64 `json:"prescreen_audit_mape,omitempty"`
}

// Baseline is a full performance capture.
type Baseline struct {
	Schema    int       `json:"schema"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	Workloads []Metrics `json:"workloads"`
}

// fromResult converts a testing.Benchmark result.
func fromResult(name string, r testing.BenchmarkResult) Metrics {
	return Metrics{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// segmentedCycleLoop is the steady-state cycle loop of a loaded 512-entry
// segmented queue: BeginCycle + Issue + Writeback + refill dispatch +
// EndCycle per operation. It mirrors BenchmarkSegmentedQueueCycle so the
// checked-in baseline and `go test -bench` agree on what is measured.
func segmentedCycleLoop(b *testing.B) {
	b.ReportAllocs()
	q := core.MustNew(core.DefaultConfig(512, 128))
	var seq int64
	for i := 0; i < 400; i++ {
		in := isa.Inst{Class: isa.IntAlu, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1 + i%20}
		u := uop.New(seq, in)
		seq++
		if !q.Dispatch(0, u) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := int64(i + 1)
		q.BeginCycle(c)
		for _, u := range q.Issue(c, 8, func(*uop.UOp) bool { return true }) {
			u.Complete = c + 1
			q.Writeback(c+1, u)
			nu := uop.New(seq, u.Inst)
			seq++
			q.Dispatch(c, nu)
		}
		q.EndCycle(c, true)
	}
}

// conventionalCycleLoop is the same steady-state loop over the
// conventional (ideal) queue, which selects straight off its ready
// bitmap. It mirrors BenchmarkConventionalQueueCycle.
func conventionalCycleLoop(b *testing.B) {
	b.ReportAllocs()
	q := iq.NewConventional(512)
	var seq int64
	for i := 0; i < 400; i++ {
		in := isa.Inst{Class: isa.IntAlu, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1 + i%20}
		u := uop.New(seq, in)
		seq++
		if !q.Dispatch(0, u) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := int64(i + 1)
		q.BeginCycle(c)
		for _, u := range q.Issue(c, 8, func(*uop.UOp) bool { return true }) {
			u.Complete = c + 1
			q.Writeback(c+1, u)
			nu := uop.New(seq, u.Inst)
			seq++
			q.Dispatch(c, nu)
		}
		q.EndCycle(c, true)
	}
}

// machineRun reports one full-machine simulation: the sim.Result plus the
// engine's idle-skipping telemetry.
type machineRun struct {
	cycles, insts    int64
	ipc              float64
	skipped, windows int64
}

// machineWorkload builds the full-machine workload for one queue design:
// the Table 1 processor run for a pinned instruction budget.
func machineWorkload(cfg sim.Config, workload string, n, warm int64) (func(b *testing.B), *machineRun) {
	var out machineRun
	fn := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := trace.New(workload, 1)
			if err != nil {
				b.Fatal(err)
			}
			p, err := sim.New(cfg, s)
			if err != nil {
				b.Fatal(err)
			}
			p.Warm(s, warm)
			res, err := p.Run(n)
			if err != nil {
				b.Fatal(err)
			}
			out = machineRun{
				cycles: res.Cycles, insts: res.Instructions, ipc: res.IPC,
				skipped: p.SkippedCycles(), windows: p.SkipWindows(),
			}
		}
	}
	return fn, &out
}

// sweepGrid is the pinned grid of the sweep workloads: six points varying
// queue design and size under one memory/branch geometry, the shape of a
// real iqbench sweep. The three segmented points form one sweep family —
// unlimited chains (the reference), a 320-chain bound swim's demand never
// reaches (peak 275 on this sample, so the prefix sweep shares its whole
// run), and a 128-chain bound that binds within the first hundred cycles
// (an honest early-divergence fallback). BENCH_7 re-recorded every sweep
// entry under this grid; sweep numbers from earlier baselines are not
// comparable.
func sweepGrid(noSkip bool) []sim.Config {
	grid := []sim.Config{
		sim.DefaultConfig(sim.QueueIdeal, 512),
		sim.SegmentedConfig(512, 0, true, true),
		sim.SegmentedConfig(512, 320, true, true),
		sim.SegmentedConfig(512, 128, true, true),
		sim.PrescheduledConfig(320),
		sim.DistanceConfig(320),
	}
	for i := range grid {
		grid[i].NoSkip = noSkip
	}
	return grid
}

// The sweep pins the default iqbench warmup (300k instructions) so the
// cold/forked ratio reflects what a real sweep saves.
const (
	sweepWorkload = "swim"
	sweepN        = 10_000
	sweepWarm     = 300_000
)

// sweepCold sweeps the grid the pre-checkpoint way: every point warms the
// machine from scratch.
func sweepCold(noSkip bool) (insts, cycles int64, err error) {
	for _, cfg := range sweepGrid(noSkip) {
		r, err := sim.RunWorkloadWarm(cfg, sweepWorkload, 1, sweepN, sweepWarm)
		if err != nil {
			return 0, 0, err
		}
		insts += r.Instructions
		cycles += r.Cycles
	}
	return insts, cycles, nil
}

// sweepForked sweeps the same grid by warming once and forking the
// checkpoint per point. Its simulated totals must equal sweepCold's —
// forked runs are bit-identical — while its wall-clock drops by roughly
// the warmup fraction.
func sweepForked(noSkip bool) (insts, cycles int64, err error) {
	ck, err := sim.NewCheckpoint(sim.DefaultConfig(sim.QueueIdeal, 512),
		sim.ContextSpec{Workload: sweepWorkload, Seed: 1, Warm: sweepWarm})
	if err != nil {
		return 0, 0, err
	}
	for _, cfg := range sweepGrid(noSkip) {
		p, err := ck.Fork(cfg)
		if err != nil {
			return 0, 0, err
		}
		r, err := p.Run(sweepN)
		if err != nil {
			return 0, 0, err
		}
		p.Recycle()
		insts += r.Instructions
		cycles += r.Cycles
	}
	return insts, cycles, nil
}

// groupFamilies splits a sweep grid into prefix-sharing families by
// sim.FamilyKey, preserving grid order within and across families.
func groupFamilies(grid []sim.Config) [][]sim.Config {
	var fams [][]sim.Config
	idx := make(map[sim.Config]int)
	for _, cfg := range grid {
		k := sim.FamilyKey(cfg)
		if i, ok := idx[k]; ok {
			fams[i] = append(fams[i], cfg)
		} else {
			idx[k] = len(fams)
			fams = append(fams, []sim.Config{cfg})
		}
	}
	return fams
}

// sweepPrefix sweeps the grid the divergence-aware way: one warmup, then
// each family runs through sim.RunFamily, sharing the reference member's
// detailed prefix with siblings its demand curves prove identical.
// Simulated totals must equal sweepCold's and sweepForked's exactly.
func sweepPrefix(noSkip bool, ps *sim.PrefixStats) (insts, cycles int64, err error) {
	ck, err := sim.NewCheckpoint(sim.DefaultConfig(sim.QueueIdeal, 512),
		sim.ContextSpec{Workload: sweepWorkload, Seed: 1, Warm: sweepWarm})
	if err != nil {
		return 0, 0, err
	}
	for _, fam := range groupFamilies(sweepGrid(noSkip)) {
		rs, err := sim.RunFamily(ck, fam, sweepN, true, ps)
		if err != nil {
			return 0, 0, err
		}
		for _, r := range rs {
			insts += r.Instructions
			cycles += r.Cycles
		}
	}
	return insts, cycles, nil
}

// sweepStore sweeps the grid through a directory-backed checkpoint store:
// LoadOrNew either warms and saves (fresh dir) or loads the saved warmup
// (populated dir), then forks per point exactly like sweepForked.
func sweepStore(dir string, noSkip bool) (insts, cycles int64, hit bool, err error) {
	st := &sim.StoreClient{Store: &sim.DirStore{Dir: dir}}
	ck, hit, err := st.LoadOrNew(sim.DefaultConfig(sim.QueueIdeal, 512),
		sim.ContextSpec{Workload: sweepWorkload, Seed: 1, Warm: sweepWarm})
	if err != nil {
		return 0, 0, false, err
	}
	for _, cfg := range sweepGrid(noSkip) {
		p, err := ck.Fork(cfg)
		if err != nil {
			return 0, 0, hit, err
		}
		r, err := p.Run(sweepN)
		if err != nil {
			return 0, 0, hit, err
		}
		p.Recycle()
		insts += r.Instructions
		cycles += r.Cycles
	}
	return insts, cycles, hit, nil
}

// smtSweepSpecs is the pinned SMT context set of the smt_sweep pair: a
// streaming workload co-scheduled with a pointer-chasing one, the
// highest-contention pairing of the SMT grid.
func smtSweepSpecs() []sim.ContextSpec {
	return []sim.ContextSpec{
		{Workload: "swim", Seed: 1, Warm: sweepWarm},
		{Workload: "twolf", Seed: 2, Warm: sweepWarm},
	}
}

// smtSweepGrid pins one machine per queue design for the SMT sweep pair.
func smtSweepGrid(noSkip bool) []sim.Config {
	grid := []sim.Config{
		sim.DefaultConfig(sim.QueueIdeal, 256),
		sim.SegmentedConfig(256, 64, true, true),
		sim.PrescheduledConfig(320),
		sim.FIFOConfig(256),
		sim.DistanceConfig(320),
	}
	for i := range grid {
		grid[i].NoSkip = noSkip
	}
	return grid
}

// smtSweepCold sweeps the SMT grid the pre-checkpoint way: every point
// warms a cold two-context machine round-robin from scratch.
func smtSweepCold(noSkip bool) (insts, cycles int64, err error) {
	for _, cfg := range smtSweepGrid(noSkip) {
		r, err := sim.RunContexts(cfg, smtSweepSpecs(), sweepN)
		if err != nil {
			return 0, 0, err
		}
		insts += r.Instructions
		cycles += r.Cycles
	}
	return insts, cycles, nil
}

// smtSweepForked warms the two-context set once and forks the checkpoint
// per design. Its simulated totals must equal smtSweepCold's.
func smtSweepForked(noSkip bool) (insts, cycles int64, err error) {
	ck, err := sim.NewCheckpoint(sim.DefaultConfig(sim.QueueIdeal, 256), smtSweepSpecs()...)
	if err != nil {
		return 0, 0, err
	}
	for _, cfg := range smtSweepGrid(noSkip) {
		p, err := ck.Fork(cfg)
		if err != nil {
			return 0, 0, err
		}
		r, err := p.Run(sweepN)
		if err != nil {
			return 0, 0, err
		}
		p.Recycle()
		insts += r.Instructions
		cycles += r.Cycles
	}
	return insts, cycles, nil
}

// smtSweepPrefix runs the SMT grid through the family scheduler. Every
// SMT grid point is a different queue design — five singleton families —
// so nothing can share and the variant must cost the same as
// smtSweepForked: it pins down that the family machinery adds no
// overhead when no family exists.
func smtSweepPrefix(noSkip bool, ps *sim.PrefixStats) (insts, cycles int64, err error) {
	ck, err := sim.NewCheckpoint(sim.DefaultConfig(sim.QueueIdeal, 256), smtSweepSpecs()...)
	if err != nil {
		return 0, 0, err
	}
	for _, fam := range groupFamilies(smtSweepGrid(noSkip)) {
		rs, err := sim.RunFamily(ck, fam, sweepN, true, ps)
		if err != nil {
			return 0, 0, err
		}
		for _, r := range rs {
			insts += r.Instructions
			cycles += r.Cycles
		}
	}
	return insts, cycles, nil
}

// sweepCkptCold is the first process against a fresh store: pays the
// warmup, serialises it, and sweeps. Fresh directory every iteration.
func sweepCkptCold(noSkip bool) (int64, int64, error) {
	dir, err := os.MkdirTemp("", "iqperf-ckpt-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	insts, cycles, hit, err := sweepStore(dir, noSkip)
	if err == nil && hit {
		err = fmt.Errorf("perf: fresh checkpoint store reported a hit")
	}
	return insts, cycles, err
}

// measureSweep benchmarks one sweep variant.
func measureSweep(name string, sweep func() (int64, int64, error)) Metrics {
	var insts, cycles int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			insts, cycles, err = sweep()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	m := fromResult(name, r)
	m.SimInstructions = insts
	m.SimCycles = cycles
	if secs := r.T.Seconds(); secs > 0 {
		m.SimMIPS = float64(insts) * float64(r.N) / secs / 1e6
	}
	if cycles > 0 {
		m.NsPerSimCycle = m.NsPerOp / float64(cycles)
	}
	return m
}

// measureSweepPrefix benchmarks a prefix-sharing sweep variant and
// attaches the last iteration's sharing outcomes to the metrics.
func measureSweepPrefix(name string, sweep func(*sim.PrefixStats) (int64, int64, error)) Metrics {
	var last *sim.PrefixStats
	m := measureSweep(name, func() (int64, int64, error) {
		ps := &sim.PrefixStats{}
		insts, cycles, err := sweep(ps)
		last = ps
		return insts, cycles, err
	})
	if last != nil {
		m.PrefixFamilies = last.Families.Load()
		m.PrefixShared = last.Shared.Load()
		m.PrefixFallbacks = last.Fallbacks.Load()
		m.PrefixSharedCycles = last.SharedCycles.Load()
		m.PrefixTotalCycles = last.TotalCycles.Load()
	}
	return m
}

// measurePrescreen benchmarks one pre-screened ci-grid sweep (analytic
// scoring of every point, simulation of the predicted frontier plus the
// audit sample) and attaches the last iteration's screening outcome.
func measurePrescreen(name string, noSkip bool) Metrics {
	o := experiments.Options{
		Instructions: 2000,
		Warmup:       10_000,
		Seed:         1,
		Benchmarks:   []string{"swim"},
		NoSkip:       noSkip,
	}
	po := experiments.PrescreenOptions{Grid: "ci", Audit: 8}
	var last *experiments.PrescreenResult
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, _, err := experiments.Prescreen(o, po)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
	})
	m := fromResult(name, r)
	if last != nil {
		w := last.Workloads[0]
		m.SimInstructions = int64(w.Simulated) * o.Instructions
		m.PrescreenScreened = int64(w.Screened)
		m.PrescreenSimulated = int64(w.Simulated)
		m.PrescreenFrontier = int64(w.Frontier)
		m.PrescreenAuditRho = w.Spearman
		m.PrescreenAuditMAPE = w.MAPE
	}
	return m
}

// Measure runs every pinned workload and returns the baseline. It takes a
// few seconds per workload (testing.Benchmark's usual settling). noSkip
// steps every cycle instead of skipping provably idle spans, for
// before/after comparisons of the skipper itself; baselines are normally
// captured with skipping on (the simulator's default).
func Measure(noSkip bool) Baseline {
	b := Baseline{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	b.Workloads = append(b.Workloads,
		fromResult("segmented_queue_cycle_512", testing.Benchmark(segmentedCycleLoop)),
		fromResult("conventional_queue_cycle_512", testing.Benchmark(conventionalCycleLoop)))

	type machine struct {
		name     string
		cfg      sim.Config
		workload string
		n, warm  int64
	}
	machines := []machine{
		{"table1_segmented_swim", sim.SegmentedConfig(512, 128, true, true), "swim", 10_000, 100_000},
		{"table1_ideal_swim", sim.DefaultConfig(sim.QueueIdeal, 512), "swim", 10_000, 100_000},
		{"table1_segmented_gcc", sim.SegmentedConfig(512, 128, true, true), "gcc", 10_000, 100_000},
	}
	for i := range machines {
		machines[i].cfg.NoSkip = noSkip
	}
	for _, m := range machines {
		fn, run := machineWorkload(m.cfg, m.workload, m.n, m.warm)
		r := testing.Benchmark(fn)
		mt := fromResult(m.name, r)
		mt.SimInstructions = run.insts
		mt.SimCycles = run.cycles
		mt.SimIPC = run.ipc
		mt.SkippedCycles = run.skipped
		mt.SkipWindows = run.windows
		if secs := r.T.Seconds(); secs > 0 {
			mt.SimMIPS = float64(run.insts) * float64(r.N) / secs / 1e6
		}
		if run.cycles > 0 {
			mt.NsPerSimCycle = mt.NsPerOp / float64(run.cycles)
		}
		b.Workloads = append(b.Workloads, mt)
	}

	// The sweep triple measures the sweep scheduler's wins: the same
	// pinned grid swept cold, forked from one warm checkpoint, and
	// forked with divergence-aware prefix sharing on top. The ns/op
	// ratios are the wall-clock savings; all three simulated totals must
	// be identical.
	b.Workloads = append(b.Workloads,
		measureSweep("sweep6_swim_cold", func() (int64, int64, error) { return sweepCold(noSkip) }),
		measureSweep("sweep6_swim_forked", func() (int64, int64, error) { return sweepForked(noSkip) }),
		measureSweepPrefix("sweep6_swim_prefix", func(ps *sim.PrefixStats) (int64, int64, error) {
			return sweepPrefix(noSkip, ps)
		}))

	// The pre-screened sweep measures the screening path end-to-end on a
	// pinned selection: score the ci grid analytically for one workload,
	// then simulate only the predicted frontier plus the audit sample.
	// The prescreen_* fields record the screening outcome next to the
	// wall-clock number, so a baseline shows both what screening costs
	// and how much of the grid it spared.
	b.Workloads = append(b.Workloads, measurePrescreen("prescreen_ci_swim", noSkip))

	// The SMT sweep triple measures the same for a multi-context set:
	// five queue designs forked from one two-context checkpoint versus
	// five cold round-robin warmups. All five designs differ, so the
	// prefix variant has nothing to share and must match the forked one —
	// the no-family overhead check. Simulated totals must be identical.
	b.Workloads = append(b.Workloads,
		measureSweep("smt_sweep5_swim_twolf_cold", func() (int64, int64, error) { return smtSweepCold(noSkip) }),
		measureSweep("smt_sweep5_swim_twolf_forked", func() (int64, int64, error) { return smtSweepForked(noSkip) }),
		measureSweepPrefix("smt_sweep5_swim_twolf_prefix", func(ps *sim.PrefixStats) (int64, int64, error) {
			return smtSweepPrefix(noSkip, ps)
		}))

	// The checkpoint-store pair measures the cross-process win: the same
	// grid swept against a fresh store (warm + serialise + sweep) and a
	// populated one (load + sweep — the repeat-sweep case -ckpt-dir
	// enables). The populated dir is seeded untimed; simulated totals must
	// match the cold sweep's exactly.
	warmDir, werr := os.MkdirTemp("", "iqperf-ckpt-")
	if werr == nil {
		defer os.RemoveAll(warmDir)
		_, _, _, werr = sweepStore(warmDir, noSkip)
	}
	b.Workloads = append(b.Workloads,
		measureSweep("sweep6_swim_ckpt_cold", func() (int64, int64, error) { return sweepCkptCold(noSkip) }),
		measureSweep("sweep6_swim_ckpt_warm", func() (int64, int64, error) {
			if werr != nil {
				return 0, 0, werr
			}
			insts, cycles, hit, err := sweepStore(warmDir, noSkip)
			if err == nil && !hit {
				err = fmt.Errorf("perf: populated checkpoint store missed")
			}
			return insts, cycles, err
		}))
	return b
}

// WriteJSON writes the baseline to path, indented, with a trailing
// newline.
func (b Baseline) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a baseline previously written by WriteJSON.
func ReadJSON(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("perf: %s: %w", path, err)
	}
	return b, nil
}

// LatestBaseline returns the path of the highest-numbered BENCH_<n>.json
// in dir, so callers (the CI perf gate, `iqbench -perf-compare auto`)
// always compare against the newest checked-in baseline instead of a
// hardcoded file that goes stale when the next one lands.
func LatestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err != nil {
			continue
		}
		// Sscanf tolerates trailing text; require the exact shape.
		if e.Name() != fmt.Sprintf("BENCH_%d.json", n) {
			continue
		}
		if n > bestN {
			bestN, best = n, filepath.Join(dir, e.Name())
		}
	}
	if best == "" {
		return "", fmt.Errorf("perf: no BENCH_<n>.json baseline found in %s", dir)
	}
	return best, nil
}
