package perf

import (
	"os"
	"path/filepath"
	"testing"
)

// costBaseline is a hand-built capture: swim measured 3× slower per
// instruction than gcc, twolf measured only through an SMT pair, and
// applu never measured at all.
func costBaseline() Baseline {
	return Baseline{
		Schema: Schema,
		Workloads: []Metrics{
			{Name: "table1_segmented_swim", NsPerOp: 3e9, SimInstructions: 1e6},
			{Name: "table1_segmented_gcc", NsPerOp: 1e9, SimInstructions: 1e6},
			{Name: "smt_sweep5_swim_twolf_cold", NsPerOp: 4e9, SimInstructions: 2e6},
			{Name: "segmented_queue_cycle_512", NsPerOp: 9500}, // no telemetry: ignored
		},
	}
}

func TestCostModelFromBaseline(t *testing.T) {
	m := NewCostModel(costBaseline())

	// swim: mean of 3000 (table1) and 2000 (smt pair) ns/inst; gcc 1000;
	// twolf 2000 (smt pair only).
	swim := m.Cost("swim", 1000)
	gcc := m.Cost("gcc", 1000)
	twolf := m.Cost("twolf", 1000)
	if swim != 2500e3 {
		t.Fatalf("swim cost = %g, want 2.5e6", swim)
	}
	if gcc != 1000e3 {
		t.Fatalf("gcc cost = %g, want 1e6", gcc)
	}
	if twolf != 2000e3 {
		t.Fatalf("twolf cost = %g, want 2e6", twolf)
	}
	// An unmeasured benchmark prices at the mean of measured ones.
	applu := m.Cost("applu", 1000)
	want := (2500.0 + 1000 + 2000) / 3 * 1000
	if applu != want {
		t.Fatalf("applu (unmeasured) cost = %g, want the mean %g", applu, want)
	}
	// An SMT point costs the sum of its contexts, so it sorts above
	// either context alone.
	pair := m.Cost("swim+gcc", 1000)
	if pair != swim+gcc {
		t.Fatalf("swim+gcc cost = %g, want %g", pair, swim+gcc)
	}
}

// TestCostModelFallback: a nil model and an empty baseline both price
// by instruction count × context count — enough to order SMT points
// above single-context ones deterministically.
func TestCostModelFallback(t *testing.T) {
	var nilModel *CostModel
	for _, m := range []*CostModel{nilModel, NewCostModel(Baseline{})} {
		if got := m.Cost("swim", 5000); got != 5000 {
			t.Fatalf("fallback single-context cost = %g, want 5000", got)
		}
		if got := m.Cost("swim+twolf", 5000); got != 10000 {
			t.Fatalf("fallback SMT cost = %g, want 10000", got)
		}
	}
}

// TestLoadCostModel: the loader reads the highest-numbered baseline in
// a directory and errors (rather than panicking or inventing data)
// when there is none.
func TestLoadCostModel(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCostModel(dir); err == nil {
		t.Fatal("empty directory produced a cost model")
	}
	b := costBaseline()
	if err := b.WriteJSON(filepath.Join(dir, "BENCH_3.json")); err != nil {
		t.Fatal(err)
	}
	// A stale lower-numbered baseline with different numbers must lose.
	stale := Baseline{Schema: Schema, Workloads: []Metrics{
		{Name: "table1_segmented_swim", NsPerOp: 1e9, SimInstructions: 1e6},
	}}
	if err := stale.WriteJSON(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Fatal(err)
	}
	m, err := LoadCostModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Cost("swim", 1000); got != 2500e3 {
		t.Fatalf("loaded model swim cost = %g, want 2.5e6 (from BENCH_3)", got)
	}
	// The checked-in repository baselines themselves must load.
	if _, err := os.Stat("../../BENCH_8.json"); err == nil {
		if _, err := LoadCostModel("../.."); err != nil {
			t.Fatalf("checked-in baselines unusable: %v", err)
		}
	}
}
