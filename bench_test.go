package iqsim

// One benchmark per table and figure of the paper (DESIGN.md §4), plus
// the design-choice ablations and microbenchmarks of the simulator's own
// hot paths. The figure/table benchmarks run scaled-down samples per
// iteration and report IPC-style custom metrics; `go run ./cmd/iqbench`
// regenerates the full tables at publication scale.

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uop"
)

// benchOptions shrinks the experiment harness to benchmark scale.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Instructions = 5_000
	o.Warmup = 60_000
	return o
}

// BenchmarkFigure1Example reproduces the Figure 1 worked example: the
// nine-instruction sequence dispatched and drained through a
// three-segment queue.
func BenchmarkFigure1Example(b *testing.B) {
	none := isa.RegNone
	add := func(s1, s2, d int) isa.Inst { return isa.Inst{Class: isa.IntAlu, Src1: s1, Src2: s2, Dest: d} }
	mul := func(s1, s2, d int) isa.Inst { return isa.Inst{Class: isa.FpAdd, Src1: s1, Src2: s2, Dest: d} }
	prog := []isa.Inst{
		add(none, none, 1), mul(none, none, 2), add(2, none, 4),
		mul(4, none, 6), mul(6, none, 8), add(1, none, 3),
		add(3, none, 5), add(5, none, 7), add(6, 7, 9),
	}
	cfg := core.Config{Segments: 3, SegSize: 16, IssueWidth: 8,
		Pushdown: true, Bypass: true, DeadlockRecovery: true, PredictedLoadLatency: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := core.MustNew(cfg)
		last := map[int]*uop.UOp{}
		var uops []*uop.UOp
		for s, in := range prog {
			u := uop.New(int64(s), in)
			for j, src := range []int{in.Src1, in.Src2} {
				if src != isa.RegNone {
					if p, ok := last[src]; ok {
						u.Prod[j] = p
					}
				}
			}
			if in.HasDest() {
				last[in.Dest] = u
			}
			uops = append(uops, u)
			q.Dispatch(0, u)
		}
		issued := 0
		for cycle := int64(1); issued < len(uops) && cycle < 40; cycle++ {
			q.BeginCycle(cycle)
			for _, u := range q.Issue(cycle, 8, func(*uop.UOp) bool { return true }) {
				issued++
				u.Complete = cycle + int64(u.Latency())
				q.Writeback(u.Complete, u)
			}
			q.EndCycle(cycle, true)
		}
		if issued != len(uops) {
			b.Fatal("example did not drain")
		}
	}
}

// BenchmarkTable1Machine exercises the full Table 1 machine end to end
// (segmented queue, paper defaults) and reports simulated IPC and
// simulation throughput.
func BenchmarkTable1Machine(b *testing.B) {
	const n = 10_000
	var ipc float64
	for i := 0; i < b.N; i++ {
		res, err := Run(Segmented(512, 128, true, true), "swim", 1, n, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		ipc = res.IPC
	}
	b.ReportMetric(ipc, "simIPC")
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "simInsts/s")
}

// BenchmarkFigure2 regenerates Figure 2 (512-entry segmented IQ
// configurations relative to the ideal queue) at benchmark scale and
// reports the cross-benchmark average relative performance of the
// combined 128-chain configuration.
func BenchmarkFigure2(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"swim", "equake", "mgrid"}
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(o)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, wl := range r.Benchmarks {
			sum += r.Relative[wl]["128 chains"]["comb"]
		}
		avg = sum / float64(len(r.Benchmarks))
	}
	b.ReportMetric(100*avg, "relPerf%")
}

// BenchmarkTable2 regenerates Table 2 (chain usage with unlimited chains)
// at benchmark scale and reports the base configuration's average chain
// count.
func BenchmarkTable2(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"swim", "equake"}
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, wl := range r.Benchmarks {
			sum += r.Average["base"][wl]
		}
		avg = sum / float64(len(r.Benchmarks))
	}
	b.ReportMetric(avg, "chainsAvg")
}

// BenchmarkFigure3 regenerates Figure 3 (IPC across queue sizes, all four
// series) at benchmark scale for one benchmark and reports the 512-entry
// combined-configuration IPC.
func BenchmarkFigure3(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"equake"}
	var ipc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(o)
		if err != nil {
			b.Fatal(err)
		}
		series := r.IPC["comb-128chains"]["equake"]
		ipc = series[len(series)-1]
	}
	b.ReportMetric(ipc, "simIPC@512")
}

// BenchmarkInTextMeasurements regenerates the in-text measurements
// (§4.3, §4.4, §4.5, §6.1) and reports the HMP hit-prediction accuracy.
func BenchmarkInTextMeasurements(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"mgrid"}
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.InText(o)
		if err != nil {
			b.Fatal(err)
		}
		acc = r["mgrid"].HMPAccuracy
	}
	b.ReportMetric(100*acc, "hmpAcc%")
}

// Ablation benchmarks (DESIGN.md §5): the full design against each
// enhancement disabled, on the memory-bound workload where the feature
// matters. Each reports simulated IPC so regressions in a feature's
// contribution are visible.

func benchAblation(b *testing.B, mod func(*sim.Config)) {
	cfg := Segmented(512, 128, true, true)
	mod(&cfg)
	var ipc float64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, "equake", 1, 8_000, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		ipc = res.IPC
	}
	b.ReportMetric(ipc, "simIPC")
}

// BenchmarkAblationFull is the reference point for the ablations.
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, func(*sim.Config) {}) }

// BenchmarkAblationNoPushdown disables §4.1 instruction pushdown.
func BenchmarkAblationNoPushdown(b *testing.B) {
	benchAblation(b, func(c *sim.Config) { c.Segmented.Pushdown = false })
}

// BenchmarkAblationNoBypass disables §4.2 segment bypassing.
func BenchmarkAblationNoBypass(b *testing.B) {
	benchAblation(b, func(c *sim.Config) { c.Segmented.Bypass = false })
}

// BenchmarkAblationInstantWires removes the chain-wire pipelining
// (signals reach every segment in the asserting cycle).
func BenchmarkAblationInstantWires(b *testing.B) {
	benchAblation(b, func(c *sim.Config) { c.Segmented.InstantWires = true })
}

// Microbenchmarks of the simulator's hot paths.

// BenchmarkSegmentedQueueCycle measures one BeginCycle+Issue round trip of
// a loaded 512-entry segmented queue.
func BenchmarkSegmentedQueueCycle(b *testing.B) {
	q := core.MustNew(core.DefaultConfig(512, 128))
	var seq int64
	for i := 0; i < 400; i++ {
		in := isa.Inst{Class: isa.IntAlu, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1 + i%20}
		u := uop.New(seq, in)
		seq++
		if !q.Dispatch(0, u) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := int64(i + 1)
		q.BeginCycle(c)
		for _, u := range q.Issue(c, 8, func(*uop.UOp) bool { return true }) {
			u.Complete = c + 1
			q.Writeback(c+1, u)
			// Refill to keep the queue loaded.
			nu := uop.New(seq, u.Inst)
			seq++
			q.Dispatch(c, nu)
		}
		q.EndCycle(c, true)
	}
}

// BenchmarkConventionalQueueCycle measures the same round trip over the
// conventional (ideal) queue, whose select runs straight off the ready
// bitmap.
func BenchmarkConventionalQueueCycle(b *testing.B) {
	q := iq.NewConventional(512)
	var seq int64
	for i := 0; i < 400; i++ {
		in := isa.Inst{Class: isa.IntAlu, Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1 + i%20}
		u := uop.New(seq, in)
		seq++
		if !q.Dispatch(0, u) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := int64(i + 1)
		q.BeginCycle(c)
		for _, u := range q.Issue(c, 8, func(*uop.UOp) bool { return true }) {
			u.Complete = c + 1
			q.Writeback(c+1, u)
			// Refill to keep the queue loaded.
			nu := uop.New(seq, u.Inst)
			seq++
			q.Dispatch(c, nu)
		}
		q.EndCycle(c, true)
	}
}

// BenchmarkCacheHierarchy measures demand accesses through the Table 1
// memory system.
func BenchmarkCacheHierarchy(b *testing.B) {
	h := mem.MustNewHierarchy(mem.DefaultHierarchyConfig())
	nop := func(int64, mem.Kind) {}
	b.ResetTimer()
	addr := uint64(0)
	for i := 0; i < b.N; i++ {
		c := int64(i)
		h.L1D.Access(c, addr, i%4 == 0, nop)
		addr += 24
		h.Tick(c)
	}
}

// BenchmarkBranchPredictor measures hybrid predictor lookups+updates.
func BenchmarkBranchPredictor(b *testing.B) {
	p := bpred.MustNewPredictor(bpred.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x400000 + (i%64)*4)
		p.Predict(pc)
		p.Update(pc, i%3 != 0)
	}
}

// BenchmarkTraceGeneration measures workload generator throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	s, err := trace.New("equake", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}
