package iqsim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 8 {
		t.Fatalf("want 8 workloads, got %v", ws)
	}
	want := map[string]bool{"ammp": true, "applu": true, "equake": true, "gcc": true,
		"mgrid": true, "swim": true, "twolf": true, "vortex": true}
	for _, w := range ws {
		if !want[w] {
			t.Errorf("unexpected workload %q", w)
		}
	}
}

func TestConstructors(t *testing.T) {
	if c := Ideal(512); c.QueueSize != 512 || c.ROBSize != 1536 {
		t.Error("Ideal defaults wrong")
	}
	c := Segmented(512, 128, true, true)
	if c.Segmented.Segments != 16 || c.Segmented.SegSize != 32 {
		t.Error("Segmented geometry wrong")
	}
	if !c.Segmented.UseHMP || !c.Segmented.UseLRP {
		t.Error("predictor flags not applied")
	}
	if !c.Segmented.Pushdown || !c.Segmented.Bypass || !c.Segmented.DeadlockRecovery {
		t.Error("enhancements should default on")
	}
	p := Prescheduled(704)
	if p.Presched.Lines != 56 || p.Presched.LineWidth != 12 || p.Presched.IssueBuffer != 32 {
		t.Error("Prescheduled geometry wrong")
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(Segmented(128, 64, true, true), "vortex", 1, 3000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 3000 || res.IPC <= 0 {
		t.Fatalf("result implausible: %+v", res)
	}
	if res.QueueName != "segmented" || res.Workload != "vortex" {
		t.Error("identity fields wrong")
	}
	if _, err := Run(Ideal(64), "no-such-workload", 1, 10, 0); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWorkloadStream(t *testing.T) {
	s, err := Workload("gcc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "gcc" {
		t.Error("name")
	}
	if _, ok := s.Next(); !ok {
		t.Error("stream empty")
	}
	if _, err := Workload("bogus", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunStreamWithBuilder(t *testing.T) {
	mk := func() trace.Stream {
		b := NewWorkloadBuilder("k", 0x1000)
		b.Block("top")
		b.Op(isa.IntAlu, isa.IntReg(1), isa.IntReg(1), isa.IntReg(30))
		b.Load(isa.IntReg(2), isa.IntReg(1), 8, trace.StreamAddr(0x8000, 1<<16, 8))
		b.Branch(isa.IntReg(10), "top", trace.LoopTaken(8))
		s, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, err := RunStream(Segmented(64, 16, false, false), mk(), 2000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := RunStream(Segmented(64, 16, false, false), mk(), 2000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b2.IPC || a.Cycles != b2.Cycles {
		t.Fatalf("custom workload runs nondeterministic: %v vs %v", a.Cycles, b2.Cycles)
	}
	if a.Workload != "k" || a.IPC <= 0 {
		t.Fatalf("result implausible: %+v", a)
	}
	// Invalid config propagates.
	bad := Segmented(64, 16, false, false)
	bad.Queue = "zzz"
	if _, err := RunStream(bad, mk(), 10, 0); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSMTFacade(t *testing.T) {
	r, err := RunSMT(Segmented(128, 64, true, true), []string{"gcc", "vortex"}, 1, 4000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions < 4000 || len(r.PerThread) != 2 {
		t.Fatalf("smt result implausible: %+v", r)
	}
}
