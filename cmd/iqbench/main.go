// Command iqbench regenerates the paper's evaluation: Figure 2, Table 2,
// Figure 3, the in-text measurements (§4.3, §4.4, §4.5, §6.1) and the
// design-choice ablations. Output is the textual equivalent of each table
// or figure; EXPERIMENTS.md records a captured run against the paper's
// numbers.
//
// Examples:
//
//	iqbench                         # everything, default sample sizes
//	iqbench -experiment fig2
//	iqbench -experiment fig3 -n 100000 -warm 500000
//	iqbench -experiment table2 -benchmarks swim,equake
//	iqbench -perf-json BENCH_3.json # simulator performance baseline
//	iqbench -perf-compare auto      # fresh capture vs newest checked-in baseline
//	iqbench -smt-sweep              # SMT matrix: context sets × designs × 2/4 contexts
//	iqbench -smt-sweep -benchmarks swim+twolf,mgrid+gcc
//
// Sweeps can reuse warmups across processes and spread a grid over
// machines:
//
//	iqbench -ckpt-dir .ckpt -experiment table2      # warm once ever, fork after
//	iqbench -experiment table2 -shard 0/2 -out s0.json
//	iqbench -experiment table2 -shard 1/2 -out s1.json
//	iqbench -merge s0.json,s1.json -out merged.json # ≡ the single-process run
//
// Shards on different hosts can share warmups through a remote
// checkpoint store (no shared filesystem needed):
//
//	iqbench -ckpt-serve :8377 -ckpt-dir .ckpt       # on one host
//	iqbench -ckpt-url http://host:8377 -experiment table2 -shard 0/2 -out s0.json
//
// The store is strictly an accelerator: if the server is unreachable
// or dies mid-sweep, shards warm locally and finish with identical
// results.
//
// A coordinator replaces the static -shard split with leased jobs:
// one host enumerates the grid, workers pull cost-ordered batches and
// upload results, crashed workers' leases expire back into the queue,
// and completed fragments are spooled so a coordinator restart loses
// nothing. The merged output is byte-identical to the single-process
// run:
//
//	iqbench -coord :8377 -experiment table2 -out merged.json   # on one host
//	iqbench -worker -coord-url http://host:8377                # on each worker
//
// Add -ckpt-dir to the coordinator to also serve shared warmups to
// the workers over the same address.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/coord"
	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/sim"
)

func main() {
	var (
		exp            = flag.String("experiment", "all", "fig2, table2, fig3, intext, related, power, ablations, smt, or all")
		smtSweep       = flag.Bool("smt-sweep", false, "run the SMT scenario matrix (shorthand for -experiment smt): co-scheduled context sets × queue designs × 2/4 hardware contexts; -benchmarks takes comma-separated \"+\"-joined sets, e.g. swim+twolf,mgrid+gcc")
		n              = flag.Int64("n", 0, "measured instructions per run (0 = default)")
		warm           = flag.Int64("warm", 0, "warm-up instructions per run (0 = default)")
		seed           = flag.Uint64("seed", 1, "workload seed")
		benches        = flag.String("benchmarks", "", "comma-separated benchmark subset (default all)")
		par            = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		perfJSON       = flag.String("perf-json", "", "measure simulator performance (pinned workloads) and write a BENCH json baseline to this path, instead of running experiments")
		perfCompare    = flag.String("perf-compare", "", "measure simulator performance and compare against the BENCH json baseline at this path (warn-only), instead of running experiments; \"auto\" picks the highest-numbered BENCH_<n>.json in the current directory")
		perfThresh     = flag.Float64("perf-threshold", 0.5, "tolerated fractional slowdown for -perf-compare (0.5 = 50%)")
		ckptDir        = flag.String("ckpt-dir", "", "directory backing the warm-checkpoint cache: warmups found there are loaded instead of re-simulated, new ones are saved for later runs")
		ckptURL        = flag.String("ckpt-url", "", "base URL of a remote checkpoint store (iqbench -ckpt-serve) shared by sweep shards on different hosts; overrides -ckpt-dir, degrades to local warmups if unreachable")
		ckptServe      = flag.String("ckpt-serve", "", "serve the -ckpt-dir checkpoint store over HTTP at this address (e.g. :8377) instead of running experiments")
		noSkip         = flag.Bool("no-skip", false, "step every simulated cycle instead of skipping provably idle spans; results are bit-identical either way (this flag exists for cross-checking and for before/after perf comparisons)")
		noPrefix       = flag.Bool("no-prefix-share", false, "fork every sweep point from its warm checkpoint instead of sharing the detailed prefix of each sweep family's most permissive member; results are bit-identical either way (this flag exists for cross-checking and for before/after perf comparisons)")
		prescreen      = flag.Bool("prescreen", false, "run a pre-screened mega-grid sweep: score every grid point with the analytic IPC model, simulate only the predicted IPC-per-entry Pareto frontier plus a seeded audit sample, and report the estimator's audit error; -out writes the simulated points as a shard JSON")
		prescreenGrid  = flag.String("prescreen-grid", "mega", "mega-grid preset for -prescreen: mega (~13k points per workload) or ci (~340)")
		prescreenAudit = flag.Int("prescreen-audit", 24, "seeded-random grid points simulated per workload regardless of the frontier prediction, to measure estimator error")
		prescreenSlack = flag.Float64("prescreen-slack", 0.05, "frontier safety margin: points predicted within this fraction of their entries-group's best are simulated too")
		prescreenCheck = flag.Float64("prescreen-check", 0, "exit non-zero when the pooled audit rank correlation falls below this threshold (0 = report only); the screening contract is 0.8")
		coordServe     = flag.String("coord", "", "serve a sweep coordinator at this address (e.g. :8377): enumerate the -experiment grid, lease jobs to -worker processes, accumulate their fragments, and write the merged JSON to -out when the grid completes; add -ckpt-dir to also serve shared warmups under /ckpt/")
		coordSpool     = flag.String("coord-spool", ".coord-spool", "directory where the coordinator durably spools completed fragments; a restarted coordinator over the same spool resumes without re-simulating finished jobs")
		coordLease     = flag.Duration("coord-lease", coord.DefaultLeaseTTL, "lease TTL for coordinator jobs; a worker that stops renewing for this long has its jobs re-queued")
		workerMode     = flag.Bool("worker", false, "run as a sweep worker: pull leased jobs from the -coord-url coordinator, simulate them, upload results, exit when the grid is done")
		coordURL       = flag.String("coord-url", "", "base URL of the coordinator (e.g. http://host:8377) for -worker")
		coordBatch     = flag.Int("coord-batch", 1, "jobs leased per request in -worker mode (the coordinator caps it); 1 gives the finest-grained load balancing")
		shard          = flag.String("shard", "", "run only shard i/n of the experiment grid (format i/n) and write a shard JSON; requires a single -experiment")
		out            = flag.String("out", "", "output path for -shard / -merge JSON (default stdout)")
		mergeList      = flag.String("merge", "", "comma-separated shard JSON files: merge them, verify completeness, write the combined JSON and render the experiment")
	)
	flag.Parse()

	if *ckptServe != "" {
		if *ckptDir == "" {
			fmt.Fprintln(os.Stderr, "iqbench: -ckpt-serve requires -ckpt-dir (the directory to serve)")
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "[ckpt-serve: listening on %s, store %s]\n", *ckptServe, *ckptDir)
		if err := http.ListenAndServe(*ckptServe, sim.NewStoreHandler(*ckptDir)); err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: ckpt-serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *perfJSON != "" || *perfCompare != "" {
		if *perfCompare == "auto" {
			latest, err := perf.LatestBaseline(".")
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqbench: %v\n", err)
				os.Exit(1)
			}
			*perfCompare = latest
		}
		start := time.Now()
		b := perf.Measure(*noSkip)
		for _, w := range b.Workloads {
			fmt.Printf("%-28s %12.0f ns/op %8d B/op %6d allocs/op", w.Name, w.NsPerOp, w.BytesPerOp, w.AllocsPerOp)
			if w.SimMIPS > 0 {
				fmt.Printf(" %8.3f simMIPS %8.0f ns/simcycle", w.SimMIPS, w.NsPerSimCycle)
			}
			if w.SkipWindows > 0 {
				fmt.Printf(" [skip: %d cycles / %d windows]", w.SkippedCycles, w.SkipWindows)
			}
			if w.PrefixTotalCycles > 0 {
				fmt.Printf(" [prefix: %d/%d cycles shared]", w.PrefixSharedCycles, w.PrefixTotalCycles)
			}
			if w.PrescreenScreened > 0 {
				fmt.Printf(" [prescreen: %d/%d simulated, audit rho %.3f]",
					w.PrescreenSimulated, w.PrescreenScreened, w.PrescreenAuditRho)
			}
			fmt.Println()
		}
		if *perfJSON != "" {
			if err := b.WriteJSON(*perfJSON); err != nil {
				fmt.Fprintf(os.Stderr, "iqbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("[perf baseline written to %s in %.1fs]\n", *perfJSON, time.Since(start).Seconds())
		}
		if *perfCompare != "" {
			base, err := perf.ReadJSON(*perfCompare)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqbench: %v\n", err)
				os.Exit(1)
			}
			warnings := perf.Compare(base, b, *perfThresh)
			if len(warnings) == 0 {
				fmt.Printf("[no perf regressions vs %s (threshold %.0f%%), %.1fs]\n",
					*perfCompare, 100**perfThresh, time.Since(start).Seconds())
			}
			for _, w := range warnings {
				fmt.Printf("WARNING: %s\n", w)
			}
		}
		return
	}

	if *smtSweep {
		if *exp != "all" && *exp != "smt" {
			fmt.Fprintf(os.Stderr, "iqbench: -smt-sweep conflicts with -experiment %s\n", *exp)
			os.Exit(2)
		}
		*exp = "smt"
	}

	o := experiments.DefaultOptions()
	if *n > 0 {
		o.Instructions = *n
	}
	if *warm > 0 {
		o.Warmup = *warm
	}
	o.Seed = *seed
	o.Parallel = *par
	o.NoSkip = *noSkip
	o.NoPrefixShare = *noPrefix
	if !*noPrefix {
		o.PrefixStats = &sim.PrefixStats{}
	}
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}
	if *ckptURL != "" {
		o.CheckpointURL = *ckptURL
		o.CkptStats = &experiments.CkptStats{}
	} else if *ckptDir != "" {
		o.CheckpointDir = *ckptDir
		o.CkptStats = &experiments.CkptStats{}
	}

	if *workerMode {
		if *coordURL == "" {
			fmt.Fprintln(os.Stderr, "iqbench: -worker requires -coord-url (the coordinator to pull jobs from)")
			os.Exit(2)
		}
		stats := &sim.StoreStats{}
		w := &coord.Worker{
			URL:       *coordURL,
			BatchSize: *coordBatch,
			Parallel:  *par,
			Stats:     stats,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}
		if err := w.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: worker: %v\n", err)
			os.Exit(1)
		}
		if len(stats.Values()) > 0 {
			fmt.Fprintf(os.Stderr, "[ckpt-cache: %s]\n", stats)
		}
		return
	}

	if *coordServe != "" {
		if err := serveCoordinator(*coordServe, *exp, o, *coordSpool, *coordLease, *ckptDir, *out); err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: coord: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *mergeList != "" {
		if err := mergeShardFiles(strings.Split(*mergeList, ","), *out); err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: merge: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *prescreen {
		start := time.Now()
		po := experiments.PrescreenOptions{Grid: *prescreenGrid, Audit: *prescreenAudit, Slack: *prescreenSlack}
		r, sf, err := experiments.Prescreen(o, po)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: prescreen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Pre-screened sweep (%s grid): simulate the predicted frontier, audit the estimator\n", r.Grid)
		fmt.Print(r.Table().String())
		if *out != "" {
			if err := writeShardJSON(sf, *out); err != nil {
				fmt.Fprintf(os.Stderr, "iqbench: prescreen: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s]\n", r.Summary())
		fmt.Printf("[prescreen completed in %.1fs]\n", time.Since(start).Seconds())
		printCkptStats(o)
		if *prescreenCheck > 0 && r.Spearman < *prescreenCheck {
			fmt.Fprintf(os.Stderr, "iqbench: prescreen audit rank correlation %.3f below required %.3f\n",
				r.Spearman, *prescreenCheck)
			os.Exit(1)
		}
		return
	}
	if *shard != "" {
		var si, sn int
		if _, err := fmt.Sscanf(*shard, "%d/%d", &si, &sn); err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: -shard wants i/n (e.g. 0/4), got %q\n", *shard)
			os.Exit(2)
		}
		start := time.Now()
		sf, err := experiments.RunShard(o, *exp, si, sn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: shard: %v\n", err)
			os.Exit(1)
		}
		if err := writeShardJSON(sf, *out); err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: shard: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[shard %d/%d of %s: %d/%d grid points in %.1fs]\n",
			si, sn, *exp, len(sf.Results), sf.TotalJobs, time.Since(start).Seconds())
		printCkptStats(o)
		return
	}

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "iqbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	all := *exp == "all"
	any := false
	if all || *exp == "fig2" {
		any = true
		run("fig2", func() error {
			r, err := experiments.Fig2(o)
			if err != nil {
				return err
			}
			fmt.Println("Figure 2: 512-entry segmented IQ relative to ideal 512-entry IQ")
			fmt.Print(r.Table().String())
			return nil
		})
	}
	if all || *exp == "table2" {
		any = true
		run("table2", func() error {
			r, err := experiments.Table2(o)
			if err != nil {
				return err
			}
			fmt.Println("Table 2: chain usage, 512-entry segmented IQ, unlimited chains")
			fmt.Print(r.Table().String())
			return nil
		})
	}
	if all || *exp == "fig3" {
		any = true
		run("fig3", func() error {
			r, err := experiments.Fig3(o)
			if err != nil {
				return err
			}
			fmt.Println("Figure 3: IPC across IQ sizes (prescheduled cells show their own capacity)")
			tabs := r.Tables()
			for _, wl := range r.Benchmarks {
				fmt.Print(tabs[wl].String())
				fmt.Println()
			}
			return nil
		})
	}
	if all || *exp == "intext" {
		any = true
		run("intext", func() error {
			r, err := experiments.InText(o)
			if err != nil {
				return err
			}
			fmt.Println("In-text measurements (§4.3, §4.4, §4.5, §6.1)")
			fmt.Print(experiments.InTextTable(r).String())
			return nil
		})
	}
	if all || *exp == "related" {
		any = true
		run("related", func() error {
			r, err := experiments.RelatedWork(o, 256)
			if err != nil {
				return err
			}
			fmt.Println("Related work (§2): dependence-based designs at 256 slots")
			fmt.Print(r.Table().String())
			return nil
		})
	}
	if all || *exp == "power" {
		any = true
		run("power", func() error {
			r, err := experiments.Power(o, 512, experiments.DefaultEnergyWeights())
			if err != nil {
				return err
			}
			fmt.Println("Power proxy (§7): 512-entry queues, event-energy units per instruction")
			fmt.Print(r.Table().String())
			return nil
		})
	}
	if all || *exp == "ablations" {
		any = true
		run("ablations", func() error {
			r, err := experiments.Ablations(o)
			if err != nil {
				return err
			}
			fmt.Println("Design ablations: IPC at 512 entries, 128 chains, HMP+LRP")
			fmt.Print(r.Table().String())
			return nil
		})
	}
	// The SMT matrix goes beyond the paper's evaluation, so it runs only
	// when asked for (-smt-sweep / -experiment smt), not under "all".
	if *exp == "smt" {
		any = true
		run("smt", func() error {
			r, err := experiments.SMT(o)
			if err != nil {
				return err
			}
			fmt.Println("SMT matrix (§7): aggregate IPC (per-context committed) per queue design and context count")
			fmt.Print(r.Table().String())
			return nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "iqbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	printCkptStats(o)
}

// serveCoordinator runs the -coord mode: enumerate the experiment's
// grid, serve leases until every job has a result, then write the
// merged file (byte-identical to a single-process -shard 0/1 run) and
// exit. Completed fragments are spooled under spoolDir before they are
// acknowledged, so restarting the coordinator over the same spool
// resumes without losing or re-simulating finished work.
func serveCoordinator(addr, experiment string, o experiments.Options, spoolDir string, leaseTTL time.Duration, ckptDir, outPath string) error {
	if experiment == "" || experiment == "all" {
		return fmt.Errorf("-coord needs a single -experiment (the grid to distribute)")
	}
	costs, err := perf.LoadCostModel(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "[coord: no perf baseline (%v); ordering jobs by instruction count]\n", err)
		costs = nil
	}
	s, err := coord.NewServer(coord.Config{
		Experiment: experiment,
		Options:    o,
		SpoolDir:   spoolDir,
		LeaseTTL:   leaseTTL,
		Costs:      costs,
		CkptDir:    ckptDir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	fail := make(chan error, 1)
	go func() { fail <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "[coord: %s grid (%d jobs) on %s, spool %s, lease %s]\n",
		experiment, s.Merged().TotalJobs, addr, spoolDir, leaseTTL)
	select {
	case err := <-fail:
		return err
	case <-s.Done():
	}
	if err := writeShardJSON(s.Merged(), outPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[coord: grid complete, merged %d results to %s]\n",
		len(s.Merged().Results), outOrStdout(outPath))
	// Linger so workers still polling for more work observe Done and
	// exit cleanly instead of erroring against a vanished server.
	time.Sleep(5 * time.Second)
	srv.Close()
	return nil
}

func outOrStdout(path string) string {
	if path == "" {
		return "stdout"
	}
	return path
}

// printCkptStats reports checkpoint-cache effectiveness when -ckpt-dir
// is in use, and prefix-sharing effectiveness unless -no-prefix-share
// disabled it.
func printCkptStats(o experiments.Options) {
	if o.CkptStats != nil {
		fmt.Printf("[ckpt-cache: %s]\n", o.CkptStats)
	}
	if o.PrefixStats != nil {
		fmt.Printf("[prefix: %s]\n", o.PrefixStats)
	}
}

// writeShardJSON writes a shard (or merged) file as indented JSON to
// path, or to stdout when path is empty. The encoding is deterministic
// (Go sorts map keys), so identical result sets produce identical bytes.
func writeShardJSON(sf *experiments.ShardFile, path string) error {
	b, err := sf.MarshalPretty()
	if err != nil {
		return err
	}
	if path == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// mergeShardFiles reads shard JSONs, merges them into the
// single-process-equivalent file, writes it, and renders the
// experiment's tables from the merged results.
func mergeShardFiles(paths []string, out string) error {
	files := make([]*experiments.ShardFile, 0, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		sf := new(experiments.ShardFile)
		if err := json.Unmarshal(b, sf); err != nil {
			return fmt.Errorf("%s: %v", p, err)
		}
		files = append(files, sf)
	}
	merged, err := experiments.MergeShards(files)
	if err != nil {
		return err
	}
	if err := writeShardJSON(merged, out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[merged %d shards: %d grid points of %s]\n",
		len(files), len(merged.Results), merged.Experiment)
	return renderMerged(merged)
}

// renderMerged prints the experiment tables assembled from a merged
// shard file, matching the output of the corresponding direct run.
func renderMerged(sf *experiments.ShardFile) error {
	o, res := sf.Options(), sf.SimResults()
	switch sf.Experiment {
	case "fig2":
		r, err := experiments.Fig2From(o, res)
		if err != nil {
			return err
		}
		fmt.Println("Figure 2: 512-entry segmented IQ relative to ideal 512-entry IQ")
		fmt.Print(r.Table().String())
	case "table2":
		r, err := experiments.Table2From(o, res)
		if err != nil {
			return err
		}
		fmt.Println("Table 2: chain usage, 512-entry segmented IQ, unlimited chains")
		fmt.Print(r.Table().String())
	case "fig3":
		r, err := experiments.Fig3From(o, res)
		if err != nil {
			return err
		}
		fmt.Println("Figure 3: IPC across IQ sizes (prescheduled cells show their own capacity)")
		tabs := r.Tables()
		for _, wl := range r.Benchmarks {
			fmt.Print(tabs[wl].String())
			fmt.Println()
		}
	case "intext":
		r, err := experiments.InTextFrom(o, res)
		if err != nil {
			return err
		}
		fmt.Println("In-text measurements (§4.3, §4.4, §4.5, §6.1)")
		fmt.Print(experiments.InTextTable(r).String())
	case "ablations":
		r, err := experiments.AblationsFrom(o, res)
		if err != nil {
			return err
		}
		fmt.Println("Design ablations: IPC at 512 entries, 128 chains, HMP+LRP")
		fmt.Print(r.Table().String())
	case "smt":
		r, err := experiments.SMTFrom(o, res)
		if err != nil {
			return err
		}
		fmt.Println("SMT matrix (§7): aggregate IPC (per-context committed) per queue design and context count")
		fmt.Print(r.Table().String())
	default:
		return fmt.Errorf("no renderer for experiment %q", sf.Experiment)
	}
	return nil
}
