// Command tracedump inspects the synthetic workload generators: it prints
// a dynamic-property profile (instruction mix, working set, dependence
// distance) for each workload, or disassembles a stream prefix.
//
// Examples:
//
//	tracedump                       # profile every workload
//	tracedump -workload swim -n 200000
//	tracedump -workload gcc -disasm 40
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to profile (default: all)")
		n        = flag.Int("n", 100_000, "instructions to profile")
		seed     = flag.Uint64("seed", 1, "workload seed")
		disasm   = flag.Int("disasm", 0, "print the first N instructions instead of a profile")
	)
	flag.Parse()

	names := trace.Names()
	if *workload != "" {
		names = []string{*workload}
	}
	for _, name := range names {
		s, err := trace.New(name, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(1)
		}
		if *disasm > 0 {
			fmt.Printf("%s (seed %d):\n", name, *seed)
			for _, in := range trace.Take(s, *disasm) {
				fmt.Println(" ", in.String())
			}
			continue
		}
		fmt.Print(trace.Characterize(s, *n).String())
		fmt.Println()
	}
}
