// Command iqsim runs a single simulation of one workload on one
// instruction-queue design and prints IPC plus the full statistics set.
//
// Examples:
//
// A comma-separated -workload list runs every workload simultaneously on
// one SMT machine and reports per-thread commit counts.
//
// Examples:
//
//	iqsim -queue segmented -size 512 -chains 128 -hmp -lrp -workload swim
//	iqsim -queue ideal -size 32 -workload gcc -n 200000
//	iqsim -queue prescheduled -size 704 -workload equake
//	iqsim -queue segmented -workload swim,gcc   # 2-thread SMT run
//	iqsim -printconfig          # dump the Table 1 machine parameters
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	iqsim "repro"
)

func main() {
	var (
		queue    = flag.String("queue", "segmented", "IQ design: ideal, segmented, prescheduled, fifos, distance")
		size     = flag.Int("size", 512, "total IQ capacity (slots)")
		chains   = flag.Int("chains", 128, "chain wires for the segmented design (0 = unlimited)")
		hmp      = flag.Bool("hmp", false, "enable the load hit/miss predictor (segmented)")
		lrp      = flag.Bool("lrp", false, "enable the left/right operand predictor (segmented)")
		workload = flag.String("workload", "swim", "workload, or comma-separated list for an SMT run: "+strings.Join(iqsim.Workloads(), ", "))
		n        = flag.Int64("n", 100_000, "instructions to simulate")
		warm     = flag.Int64("warm", 300_000, "instructions to fast-forward (cache/predictor warm-up)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		noPush   = flag.Bool("nopushdown", false, "disable instruction pushdown (segmented)")
		noByp    = flag.Bool("nobypass", false, "disable segment bypass (segmented)")
		instant  = flag.Bool("instantwires", false, "ablation: unpipelined chain wires (segmented)")
		verbose  = flag.Bool("v", false, "print the full statistics set")
		printCfg = flag.Bool("printconfig", false, "print the Table 1 machine parameters and exit")
	)
	flag.Parse()

	var cfg iqsim.Config
	switch *queue {
	case "ideal":
		cfg = iqsim.Ideal(*size)
	case "segmented":
		cfg = iqsim.Segmented(*size, *chains, *hmp, *lrp)
		cfg.Segmented.Pushdown = !*noPush
		cfg.Segmented.Bypass = !*noByp
		cfg.Segmented.InstantWires = *instant
	case "prescheduled":
		cfg = iqsim.Prescheduled(*size)
	case "fifos":
		cfg = iqsim.FIFOBased(*size)
	case "distance":
		cfg = iqsim.Distance(*size)
	default:
		fmt.Fprintf(os.Stderr, "iqsim: unknown queue %q\n", *queue)
		os.Exit(2)
	}

	if *printCfg {
		printConfig(cfg)
		return
	}

	workloads, err := splitWorkloads(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqsim:", err)
		os.Exit(2)
	}
	if len(workloads) > 1 {
		res, err := iqsim.RunSMT(cfg, workloads, *seed, *n, *warm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iqsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%s SMT x%d: IPC %.4f (%d instructions, %d cycles)\n",
			cfg.Queue, len(workloads), res.IPC, res.Instructions, res.Cycles)
		for i, wl := range res.Workloads {
			fmt.Printf("  thread %d %-12s %8d committed\n", i, wl, res.PerThread[i])
		}
		if *verbose {
			fmt.Print(res.Stats.String())
		}
		return
	}

	res, err := iqsim.Run(cfg, *workload, *seed, *n, *warm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%s on %s: IPC %.4f (%d instructions, %d cycles)\n",
		res.QueueName, res.Workload, res.IPC, res.Instructions, res.Cycles)
	if *verbose {
		fmt.Print(res.Stats.String())
	} else {
		for _, k := range []string{"branch_mispredict_rate", "l1d_miss_rate", "l2_miss_rate",
			"iq_occupancy_avg", "chains_avg", "chains_peak", "deadlock_cycles"} {
			if v, ok := res.Stats.Get(k); ok {
				fmt.Printf("  %-24s %.4f\n", k, v)
			}
		}
	}
}

// splitWorkloads parses a comma-separated -workload list, rejecting
// empty elements (doubled or trailing commas) with the offending token's
// 1-based position so `swim,,gcc` and `swim,` fail loudly instead of
// silently running a phantom empty workload.
func splitWorkloads(list string) ([]string, error) {
	parts := strings.Split(list, ",")
	for i, p := range parts {
		if strings.TrimSpace(p) == "" {
			return nil, fmt.Errorf("-workload list %q: empty workload at position %d", list, i+1)
		}
		parts[i] = strings.TrimSpace(p)
	}
	return parts, nil
}

func printConfig(cfg iqsim.Config) {
	fmt.Println("Processor parameters (Table 1):")
	fmt.Printf("  front-end pipeline      %d cycles fetch-to-decode, %d decode-to-dispatch\n",
		cfg.FetchToDecode, cfg.DecodeToDispatch)
	fmt.Printf("  fetch bandwidth         %d instructions/cycle, max %d branches\n",
		cfg.FetchWidth, cfg.MaxBranches)
	fmt.Printf("  dispatch/issue/commit   %d/%d/%d per cycle\n",
		cfg.DispatchWidth, cfg.IssueWidth, cfg.CommitWidth)
	fmt.Printf("  function units          %d each: IntALU, IntMul, FpAdd, FpMul/Div/Sqrt\n", cfg.FUPerClass)
	fmt.Printf("  queue                   %s, %d entries (ROB %d, LSQ %d)\n",
		cfg.Queue, cfg.QueueSize, cfg.ROBSize, cfg.LSQSize)
	fmt.Printf("  branch predictor        hybrid local/global: %d-bit global, %dx%d-bit local, %d-bit choice\n",
		cfg.BranchPredictor.GlobalHistBits, cfg.BranchPredictor.LocalEntries,
		cfg.BranchPredictor.LocalHistBits, cfg.BranchPredictor.ChoiceHistBits)
	fmt.Printf("  BTB                     %d entries, %d-way\n", cfg.BTBEntries, cfg.BTBWays)
	m := cfg.Memory
	fmt.Printf("  L1I                     %d KB %d-way, %d-cycle\n", m.L1I.Size>>10, m.L1I.Ways, m.L1I.HitLatency)
	fmt.Printf("  L1D                     %d KB %d-way, %d-cycle, %d MSHRs\n",
		m.L1D.Size>>10, m.L1D.Ways, m.L1D.HitLatency, m.L1D.MSHRs)
	fmt.Printf("  L2                      %d MB %d-way, %d-cycle, %d MSHRs, %d B/cycle to L1\n",
		m.L2.Size>>20, m.L2.Ways, m.L2.HitLatency, m.L2.MSHRs, m.L2.UpLinkBytesPerCycle)
	fmt.Printf("  memory                  %d-cycle, %d B/cycle\n", m.MemLatency, m.MemBytesPerCycle)
}
