// Command iqtrace visualizes the segmented instruction queue cycle by
// cycle: per-segment occupancy, ready instructions in segment 0, chains
// in use, and issue activity, as a scrolling text timeline. It is the
// debugging lens for watching chains suspend across cache misses and
// drain afterwards.
//
// Examples:
//
//	iqtrace -workload swim -cycles 80
//	iqtrace -workload equake -skip 2000 -cycles 120 -size 256 -chains 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "swim", "workload to trace")
		size     = flag.Int("size", 512, "total IQ capacity")
		chains   = flag.Int("chains", 128, "chain wires (0 = unlimited)")
		hmp      = flag.Bool("hmp", true, "hit/miss predictor")
		lrp      = flag.Bool("lrp", true, "left/right predictor")
		warm     = flag.Int64("warm", 300_000, "fast-forward instructions")
		skip     = flag.Int64("skip", 500, "cycles to run before displaying")
		cycles   = flag.Int64("cycles", 60, "cycles to display")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := sim.SegmentedConfig(*size, *chains, *hmp, *lrp)
	s, err := trace.New(*workload, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqtrace:", err)
		os.Exit(1)
	}
	p, err := sim.New(cfg, s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqtrace:", err)
		os.Exit(1)
	}
	if *warm > 0 {
		p.Warm(s, *warm)
	}
	q := p.Queue().(*core.SegmentedIQ)
	nSegs := q.Config().Segments

	for i := int64(0); i < *skip; i++ {
		p.Step()
	}

	fmt.Printf("workload %s, %d entries as %d x %d segments, %s chains\n\n",
		*workload, *size, nSegs, q.Config().SegSize, chainsLabel(*chains))
	fmt.Printf("%7s  %-*s  %5s %6s %6s %9s\n",
		"cycle", nSegs*3, segHeader(nSegs), "total", "chains", "commit", "deadlocks")
	fmt.Printf("%s\n", strings.Repeat("-", 7+2+nSegs*3+2+5+1+6+1+6+1+9))

	lastCommit := p.Committed()
	for i := int64(0); i < *cycles; i++ {
		p.Step()
		var occ []string
		for k := nSegs - 1; k >= 0; k-- {
			occ = append(occ, fmt.Sprintf("%2d ", q.SegmentLen(k)))
		}
		st := stats.NewSet()
		q.CollectStats(st)
		committed := p.Committed()
		fmt.Printf("%7d  %s  %5d %6d %6d %9.0f\n",
			p.Cycle(), strings.Join(occ, ""), q.Len(), q.ChainsInUse(),
			committed-lastCommit, st.MustGet("deadlock_recoveries"))
		lastCommit = committed
	}
	fmt.Printf("\ncommitted %d instructions in %d cycles (IPC %.3f so far)\n",
		p.Committed(), p.Cycle(), float64(p.Committed())/float64(p.Cycle()))
	fmt.Println("columns: segment occupancies top..bottom (issue buffer rightmost)")
}

func segHeader(n int) string {
	var b strings.Builder
	for k := n - 1; k >= 0; k-- {
		fmt.Fprintf(&b, "s%-2d", k)
	}
	return b.String()
}

func chainsLabel(n int) string {
	if n == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", n)
}
